// Failure-injection and fuzz-ish robustness: malformed external inputs
// must raise htp::Error (never crash or silently accept), and internal
// invariants must catch corrupted states.
#include <gtest/gtest.h>

#include "core/partition_io.hpp"
#include "core/paper_examples.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/hmetis_io.hpp"
#include "netlist/rng.hpp"

namespace htp {
namespace {

// Random byte-level mutations of a valid document: parsing must either
// succeed or throw htp::Error — nothing else.
template <typename ParseFn>
void FuzzMutations(const std::string& valid, ParseFn&& parse,
                   std::uint64_t seed, int mutations) {
  Rng rng(seed);
  for (int i = 0; i < mutations; ++i) {
    std::string doc = valid;
    const std::size_t edits = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < edits && !doc.empty(); ++k) {
      const std::size_t pos = rng.next_below(doc.size());
      switch (rng.next_below(3)) {
        case 0:
          doc[pos] = static_cast<char>('0' + rng.next_below(10));
          break;
        case 1:
          doc.erase(pos, 1 + rng.next_below(8));
          break;
        default:
          doc.insert(pos, "9");
          break;
      }
    }
    try {
      parse(doc);
    } catch (const Error&) {
      // expected for most mutations
    }
    // Any other exception type or a crash fails the test by itself.
  }
}

TEST(Robustness, BenchParserSurvivesMutations) {
  const std::string valid(C17BenchText());
  FuzzMutations(valid, [](const std::string& doc) { ParseBench(doc); }, 11,
                400);
}

TEST(Robustness, HmetisParserSurvivesMutations) {
  const std::string valid = WriteHmetis(Figure2Graph());
  FuzzMutations(valid, [](const std::string& doc) { ParseHmetis(doc); }, 12,
                400);
}

TEST(Robustness, PartitionParserSurvivesMutations) {
  Hypergraph hg = Figure2Graph();
  const std::string valid =
      WritePartitionText(Figure2OptimalPartition(hg));
  FuzzMutations(valid,
                [&hg](const std::string& doc) {
                  const TreePartition tp = ReadPartitionText(hg, doc);
                  // If it parses, it must be structurally sound.
                  EXPECT_TRUE(tp.fully_assigned());
                },
                13, 400);
}

TEST(Robustness, ValidatorCatchesForeignAssignments) {
  // A partition whose parsed leaf ids point at non-leaf blocks must be
  // rejected at assignment time.
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  std::string text = WritePartitionText(tp);
  // Redirect one assignment to block 1 (a level-1 block, not a leaf).
  const std::size_t pos = text.find("assign 0 ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("assign 0 3").size(), "assign 0 1");
  EXPECT_THROW(ReadPartitionText(hg, text), Error);
}

TEST(Robustness, ValidatorCatchesDoubleAssignment) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  std::string text = WritePartitionText(tp);
  const std::size_t pos = text.find("assign 1 ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("assign 1").size(), "assign 0");
  EXPECT_THROW(ReadPartitionText(hg, text), Error);
}

}  // namespace
}  // namespace htp
