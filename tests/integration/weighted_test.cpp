// Integration coverage for non-unit node sizes and net capacities, which
// the ISCAS85 experiments never exercise: the whole pipeline must stay
// valid and self-consistent on weighted instances.
#include <gtest/gtest.h>

#include "core/htp_flow.hpp"
#include "core/pin_report.hpp"
#include "lp/spreading_lp.hpp"
#include "partition/exhaustive.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/rfm.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// Random circuit with node sizes in {1..4} and capacities in {0.5, 1, 2}.
Hypergraph WeightedCircuit(NodeId n, std::size_t extra, std::uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder builder;
  for (NodeId v = 0; v < n; ++v)
    builder.add_node(1.0 + static_cast<double>(rng.next_below(4)));
  for (NodeId v = 1; v < n; ++v) {
    const double cap[] = {0.5, 1.0, 2.0};
    builder.add_net({static_cast<NodeId>(rng.next_below(v)), v},
                    cap[rng.next_below(3)]);
  }
  for (std::size_t i = 0; i < extra; ++i) {
    std::vector<NodeId> pins;
    const std::size_t deg = 2 + rng.next_below(3);
    for (std::size_t k = 0; k < deg; ++k)
      pins.push_back(static_cast<NodeId>(rng.next_below(n)));
    builder.add_net(pins, 0.5 + rng.next_double());
  }
  return builder.build();
}

class WeightedPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedPipelineTest, FlowStaysValidOnWeightedInstances) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = WeightedCircuit(40 + seed % 40, 30, seed);
  // Generous slack: weighted first-fit needs headroom.
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.5);
  HtpFlowParams params;
  params.iterations = 2;
  params.seed = seed;
  const HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  RequireValidPartition(flow.partition, spec);
  EXPECT_NEAR(flow.cost, PartitionCost(flow.partition, spec), 1e-9);
}

TEST_P(WeightedPipelineTest, BaselinesAndRefinerStayValid) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = WeightedCircuit(50, 40, seed ^ 0xc0ffee);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.5);
  TreePartition rfm = RunRfm(hg, spec, {16, seed});
  RequireValidPartition(rfm, spec);
  TreePartition gfm = RunGfm(hg, spec, {16, seed});
  RequireValidPartition(gfm, spec);
  const double before = PartitionCost(rfm, spec);
  const HtpFmStats stats = RefineHtpFm(rfm, spec);
  RequireValidPartition(rfm, spec);
  EXPECT_LE(stats.final_cost, before + 1e-9);
  // Pin report identity holds with fractional capacities too.
  const PartitionReport report = ReportPartition(rfm, spec);
  const std::vector<double> by_level = PartitionCostByLevel(rfm, spec);
  for (Level l = 0; l < by_level.size(); ++l)
    EXPECT_NEAR(report.levels[l].total_pins * spec.weight(l), by_level[l],
                1e-9);
}

TEST_P(WeightedPipelineTest, MetricFeasibilityOnWeightedInstances) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = WeightedCircuit(30, 25, seed * 7 + 3);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.4);
  FlowInjectionParams params;
  params.seed = seed;
  const FlowInjectionResult result = ComputeSpreadingMetric(hg, spec, params);
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(
      CheckSpreadingMetric(hg, spec, result.metric, 1e-6).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedPipelineTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(WeightedLp, BoundHoldsOnWeightedTinyInstance) {
  Hypergraph hg = WeightedCircuit(8, 5, 77);
  std::vector<LevelSpec> levels(2);
  levels[0] = {hg.total_size() / 2.0 + 2.0, 2, 1.5};
  levels[1] = {hg.total_size(), 2, 1.0};
  const HierarchySpec spec{std::move(levels)};
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(lp.lower_bound, exact->cost + 1e-6);
}

}  // namespace
}  // namespace htp
