#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "netlist/rng.hpp"

namespace htp {
namespace {

LpRow Row(std::vector<double> coeffs, Relation rel, double rhs) {
  return LpRow{std::move(coeffs), rel, rhs};
}

TEST(Simplex, SolvesTextbookMaximizationAsMin) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => opt 36 at (2, 6).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};  // minimize the negation
  lp.rows.push_back(Row({1, 0}, Relation::kLessEqual, 4));
  lp.rows.push_back(Row({0, 2}, Relation::kLessEqual, 12));
  lp.rows.push_back(Row({3, 2}, Relation::kLessEqual, 18));
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  => opt at (4, 0) = 8.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.rows.push_back(Row({1, 1}, Relation::kGreaterEqual, 4));
  lp.rows.push_back(Row({1, 0}, Relation::kGreaterEqual, 1));
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-7);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + 2y == 6, x - y == 0  => x = y = 2, obj 4.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back(Row({1, 2}, Relation::kEqual, 6));
  lp.rows.push_back(Row({1, -1}, Relation::kEqual, 0));
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.rows.push_back(Row({1}, Relation::kLessEqual, 1));
  lp.rows.push_back(Row({1}, Relation::kGreaterEqual, 2));
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x s.t. x >= 1 (x can grow forever).
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.rows.push_back(Row({1}, Relation::kGreaterEqual, 1));
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x + y s.t. -x - y <= -3  (i.e. x + y >= 3).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back(Row({-1, -1}, Relation::kLessEqual, -3));
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (classic
  // degeneracy); Bland's rule must not cycle.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back(Row({1, 0}, Relation::kLessEqual, 1));
  lp.rows.push_back(Row({0, 1}, Relation::kLessEqual, 1));
  lp.rows.push_back(Row({1, 1}, Relation::kLessEqual, 2));
  lp.rows.push_back(Row({2, 2}, Relation::kLessEqual, 4));
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.rows.push_back(Row({1, 1}, Relation::kEqual, 2));
  lp.rows.push_back(Row({2, 2}, Relation::kEqual, 4));  // same hyperplane
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);  // all weight on x
}

TEST(Simplex, ZeroRowsMeansTriviallyOptimal) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {1.0, 1.0, 1.0};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

// Property sweep: on random feasible covering LPs, the simplex solution is
// feasible and no cheaper than any sampled feasible point (weak duality
// stand-in by random probing).
class SimplexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexPropertyTest, FeasibleAndNotBeatenByRandomPoints) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.next_below(4);
  const std::size_t m = 2 + rng.next_below(5);
  LpProblem lp;
  lp.num_vars = n;
  lp.objective.resize(n);
  for (double& c : lp.objective) c = 0.5 + rng.next_double();
  for (std::size_t i = 0; i < m; ++i) {
    LpRow row;
    row.coeffs.resize(n);
    for (double& a : row.coeffs)
      a = rng.next_bool(0.5) ? 0.5 + rng.next_double() : 0.0;
    if (std::all_of(row.coeffs.begin(), row.coeffs.end(),
                    [](double a) { return a == 0.0; }))
      row.coeffs[0] = 1.0;
    row.rel = Relation::kGreaterEqual;
    row.rhs = 1.0 + rng.next_double() * 4.0;
    lp.rows.push_back(std::move(row));
  }
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);  // covering LPs are feasible
  // Feasibility of the reported point.
  for (const LpRow& row : lp.rows) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) lhs += row.coeffs[j] * sol.x[j];
    EXPECT_GE(lhs, row.rhs - 1e-6);
  }
  for (double xj : sol.x) EXPECT_GE(xj, -1e-9);
  // Random feasible probes cannot beat the optimum.
  for (int probe = 0; probe < 200; ++probe) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.next_double() * 12.0;
    bool feasible = true;
    for (const LpRow& row : lp.rows) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += row.coeffs[j] * x[j];
      if (lhs < row.rhs) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (std::size_t j = 0; j < n; ++j) obj += lp.objective[j] * x[j];
    EXPECT_GE(obj, sol.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace htp
