#include "lp/spreading_lp.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "partition/exhaustive.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// Two 3-node triangles joined by one edge; one level with C0 = 3.
Hypergraph TwoTriangles() {
  HypergraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({1u, 2u});
  builder.add_net({0u, 2u});
  builder.add_net({3u, 4u});
  builder.add_net({4u, 5u});
  builder.add_net({3u, 5u});
  builder.add_net({2u, 3u}, 1.0, "bridge");
  return builder.build();
}

HierarchySpec OneLevelSpec(double c0, double total) {
  std::vector<LevelSpec> levels(2);
  levels[0] = {c0, 2, 1.0};
  levels[1] = {total, 2, 1.0};
  return HierarchySpec(std::move(levels));
}

TEST(SpreadingLp, TwoTrianglesLowerBoundMatchesOptimum) {
  Hypergraph hg = TwoTriangles();
  const HierarchySpec spec = OneLevelSpec(3.0, 6.0);
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.converged);
  // The optimal partition cuts only the bridge: cost = span * w = 2.
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->cost, 2.0);
  // Lemma 2: LP optimum lower-bounds the optimal integral cost.
  EXPECT_LE(lp.lower_bound, exact->cost + 1e-6);
  EXPECT_GT(lp.lower_bound, 0.0);
}

TEST(SpreadingLp, FinalMetricIsFeasible) {
  Hypergraph hg = TwoTriangles();
  const HierarchySpec spec = OneLevelSpec(3.0, 6.0);
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  ASSERT_TRUE(lp.converged);
  EXPECT_FALSE(
      CheckSpreadingMetric(hg, spec, lp.metric, 1e-5).has_value());
}

TEST(SpreadingLp, TrivialWhenEverythingFitsOneLeaf) {
  Hypergraph hg = TwoTriangles();
  const HierarchySpec spec = OneLevelSpec(10.0, 10.0);  // C0 >= total
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.converged);
  EXPECT_NEAR(lp.lower_bound, 0.0, 1e-9);
}

TEST(SpreadingLp, Figure2LowerBound) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  SpreadingLpOptions options;
  options.max_rounds = 300;
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec, options);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.converged);
  EXPECT_LE(lp.lower_bound, kFigure2OptimalCost + 1e-5);
  EXPECT_GT(lp.lower_bound, 1.0);  // nontrivial bound
}

class SpreadingLpPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpreadingLpPropertyTest, LowerBoundsTheExactOptimum) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(8, 6, 3, seed);
  std::vector<LevelSpec> levels(3);
  levels[0] = {3.0, 2, 1.0};
  levels[1] = {5.0, 2, 2.0};
  levels[2] = {8.0, 2, 1.0};
  const HierarchySpec spec{std::move(levels)};
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  ASSERT_TRUE(lp.converged);
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(lp.lower_bound, exact->cost + 1e-5)
      << "LP bound must never exceed the optimum";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadingLpPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// The paper formulates (P1) on graphs and extends the algorithms "easily"
// to hypergraphs; our LP machinery works on hypergraphs directly (nets as
// switch-boxes), and the Lemma-2 bound must still hold against the exact
// optimum.
class HypergraphLpPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HypergraphLpPropertyTest, BoundHoldsWithMultiPinNets) {
  const std::uint64_t seed = GetParam();
  // Dense multi-pin nets: degree up to 5 on 8 nodes.
  Hypergraph hg = testutil::RandomConnectedHypergraph(8, 7, 5, seed);
  std::vector<LevelSpec> levels(3);
  levels[0] = {3.0, 2, 1.0};
  levels[1] = {5.0, 2, 1.0};
  levels[2] = {8.0, 2, 1.0};
  const HierarchySpec spec{std::move(levels)};
  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  ASSERT_TRUE(lp.converged);
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(lp.lower_bound, exact->cost + 1e-5)
      << "hypergraph LP bound exceeded the optimum";
  EXPECT_GE(lp.lower_bound, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphLpPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace htp
