// Coarsener invariants: determinism, size caps, cost-exact contraction, and
// the coarsen -> partition -> project round trip (docs/scaling.md).
#include <gtest/gtest.h>

#include <set>

#include "core/cost.hpp"
#include "core/htp_flow.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/multilevel_flow.hpp"
#include "netlist/generators.hpp"
#include "netlist/subhypergraph.hpp"

namespace htp {
namespace {

Hypergraph TestCircuit(std::size_t gates, std::uint64_t seed) {
  RentCircuitParams params;
  params.num_gates = gates;
  params.num_primary_inputs = gates / 20;
  params.seed = seed;
  return RentCircuit(params);
}

TEST(CoarsenTest, LabelPropagationShrinksAndRespectsCap) {
  const Hypergraph hg = TestCircuit(2000, 7);
  CoarsenParams params;
  params.scheme = CoarsenScheme::kLabelPropagation;
  params.max_cluster_size = 12.0;
  const CoarsenLevel level = CoarsenOnce(hg, params);
  ASSERT_EQ(level.cluster_of.size(), hg.num_nodes());
  EXPECT_LT(level.num_clusters, hg.num_nodes() / 2);
  EXPECT_EQ(level.coarse.num_nodes(), level.num_clusters);
  // Cluster sizes: recomputed from the fine graph, bounded by the cap, and
  // equal to the coarse node sizes (contraction preserves totals).
  std::vector<double> sizes(level.num_clusters, 0.0);
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    ASSERT_LT(level.cluster_of[v], level.num_clusters);
    sizes[level.cluster_of[v]] += hg.node_size(v);
  }
  for (BlockId c = 0; c < level.num_clusters; ++c) {
    EXPECT_LE(sizes[c], params.max_cluster_size + 1e-9) << "cluster " << c;
    EXPECT_NEAR(sizes[c], level.coarse.node_size(c), 1e-9) << "cluster " << c;
  }
  EXPECT_NEAR(level.coarse.total_size(), hg.total_size(), 1e-6);
}

TEST(CoarsenTest, HeavyEdgeMatchingPairsOnly) {
  const Hypergraph hg = TestCircuit(1000, 11);
  CoarsenParams params;
  params.scheme = CoarsenScheme::kHeavyEdgeMatching;
  const CoarsenLevel level = CoarsenOnce(hg, params);
  std::vector<int> count(level.num_clusters, 0);
  for (NodeId v = 0; v < hg.num_nodes(); ++v) ++count[level.cluster_of[v]];
  for (BlockId c = 0; c < level.num_clusters; ++c) {
    EXPECT_GE(count[c], 1);
    EXPECT_LE(count[c], 2) << "matching produced a cluster of " << count[c];
  }
  EXPECT_LT(level.num_clusters, hg.num_nodes());  // something matched
}

TEST(CoarsenTest, CoarsenOnceIsDeterministic) {
  const Hypergraph hg = TestCircuit(1500, 3);
  for (const CoarsenScheme scheme :
       {CoarsenScheme::kLabelPropagation, CoarsenScheme::kHeavyEdgeMatching}) {
    CoarsenParams params;
    params.scheme = scheme;
    params.max_cluster_size = 20.0;
    const CoarsenLevel a = CoarsenOnce(hg, params);
    const CoarsenLevel b = CoarsenOnce(hg, params);
    EXPECT_EQ(a.cluster_of, b.cluster_of);
    EXPECT_EQ(a.num_clusters, b.num_clusters);
    EXPECT_EQ(a.coarse.num_nets(), b.coarse.num_nets());
  }
}

TEST(CoarsenTest, ContractMergesParallelNetsSummingCapacities) {
  // Two clusters {0,1} and {2,3}; three fine nets all contract to the pair
  // {cluster0, cluster1} and must merge into ONE coarse net with capacity
  // 1.5 + 2.0 + 0.5; the inner net {0,1} vanishes (single-cluster span).
  HypergraphBuilder builder;
  for (int v = 0; v < 4; ++v) builder.add_node(1.0);
  builder.add_net({0, 2}, 1.5);
  builder.add_net({1, 3}, 2.0);
  builder.add_net({0, 1, 2}, 0.5);
  builder.add_net({0, 1}, 9.0);
  const Hypergraph hg = builder.build();
  const std::vector<BlockId> cluster_of = {0, 0, 1, 1};
  const Hypergraph coarse = ContractClustersMerged(hg, cluster_of, 2);
  ASSERT_EQ(coarse.num_nodes(), 2u);
  ASSERT_EQ(coarse.num_nets(), 1u);
  EXPECT_NEAR(coarse.net_capacity(0), 4.0, 1e-12);
  EXPECT_EQ(coarse.pins(0).size(), 2u);
}

TEST(CoarsenTest, CoarsenToThresholdReachesThreshold) {
  const Hypergraph hg = TestCircuit(4000, 5);
  CoarsenParams params;
  params.max_cluster_size = hg.total_size() / 64.0;
  const auto stack = CoarsenToThreshold(hg, 400, params);
  ASSERT_FALSE(stack.empty());
  EXPECT_LE(stack.back().coarse.num_nodes(), 400u);
  // Monotone shrink, finest first.
  NodeId prev = hg.num_nodes();
  for (const CoarsenLevel& level : stack) {
    EXPECT_LT(level.num_clusters, prev);
    prev = level.num_clusters;
  }
}

// The tentpole invariant: partition the coarse graph, project through the
// memento, and the fine-side cost equals the coarse-side cost exactly
// (parallel-net merging is capacity-additive, Equation (1) is linear in
// capacity). The projected partition is also valid for the same spec.
TEST(CoarsenTest, ProjectionRoundTripIsCostExactAndValid) {
  const Hypergraph hg = TestCircuit(2000, 13);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.5);
  CoarsenParams params;
  params.max_cluster_size = FeasibleClusterCap(hg, spec);
  const auto stack = CoarsenToThreshold(hg, 300, params);
  ASSERT_FALSE(stack.empty());

  const Hypergraph& coarse = stack.back().coarse;
  HtpFlowParams flow;
  flow.iterations = 1;
  flow.seed = 17;
  const HtpFlowResult coarse_result = RunHtpFlow(coarse, spec, flow);
  EXPECT_NEAR(coarse_result.cost, PartitionCost(coarse_result.partition, spec),
              1e-9);

  // Project down the whole stack, checking exactness at every level.
  const TreePartition* tp = &coarse_result.partition;
  std::vector<TreePartition> kept;
  kept.reserve(stack.size());
  for (std::size_t i = stack.size(); i-- > 0;) {
    const Hypergraph& fine = (i == 0) ? hg : stack[i - 1].coarse;
    kept.push_back(ProjectPartition(*tp, fine, stack[i].cluster_of));
    EXPECT_NEAR(PartitionCost(kept.back(), spec), coarse_result.cost, 1e-6)
        << "level " << i;
    tp = &kept.back();
  }
  RequireValidPartition(*tp, spec);
  EXPECT_EQ(&tp->hypergraph(), &hg);
}

}  // namespace
}  // namespace htp
