// RunMultilevelFlow: end-to-end validity, the per-level stats chain, the
// {threads} x {metric_threads} bit-identity cross product, the flat path,
// the figure-2 golden bound, the sampled oracle, and anytime behaviour.
#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/paper_examples.hpp"
#include "multilevel/multilevel_flow.hpp"
#include "netlist/generators.hpp"

namespace htp {
namespace {

Hypergraph TestCircuit(std::size_t gates, std::uint64_t seed) {
  RentCircuitParams params;
  params.num_gates = gates;
  params.num_primary_inputs = gates / 20;
  params.seed = seed;
  return RentCircuit(params);
}

MultilevelParams FastParams(NodeId threshold) {
  MultilevelParams params;
  params.flow.iterations = 1;
  params.flow.seed = 23;
  params.coarsen_threshold = threshold;
  return params;
}

TEST(MultilevelFlowTest, ProducesValidPartitionWithConsistentStats) {
  const Hypergraph hg = TestCircuit(3000, 5);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.5);
  const MultilevelResult result =
      RunMultilevelFlow(hg, spec, FastParams(250));
  RequireValidPartition(result.partition, spec);
  EXPECT_EQ(&result.partition.hypergraph(), &hg);
  EXPECT_NEAR(result.cost, PartitionCost(result.partition, spec), 1e-9);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kCompleted);
  ASSERT_GT(result.coarsen_levels, 0u);
  EXPECT_LE(result.coarsest_nodes, 250u);
  ASSERT_EQ(result.level_stats.size(), result.coarsen_levels);
  // The stats chain: the coarsest projection starts at the coarse cost,
  // each level's projection starts at the previous level's refined cost
  // (projection is cost-exact), and refinement never worsens.
  double prev = result.coarse_cost;
  for (const MultilevelLevelStats& s : result.level_stats) {
    EXPECT_NEAR(s.projected_cost, prev, 1e-6);
    EXPECT_LE(s.refined_cost, s.projected_cost + 1e-9);
    prev = s.refined_cost;
  }
  EXPECT_NEAR(result.cost, prev, 1e-9);
  EXPECT_EQ(result.level_stats.back().nodes, hg.num_nodes());
}

TEST(MultilevelFlowTest, BitIdenticalAcrossThreadCrossProduct) {
  // The determinism contract, extended to the multilevel path: every
  // {threads} x {metric_threads} combination must produce the identical
  // partition, cost, and per-level stats (tests/core/htp_flow_parallel_test
  // asserts the same for the flat path).
  const Hypergraph hg = TestCircuit(1500, 9);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.5);
  MultilevelParams base = FastParams(200);

  const MultilevelResult reference = RunMultilevelFlow(hg, spec, base);
  ASSERT_GT(reference.coarsen_levels, 0u);
  for (const std::size_t threads : {1, 2, 8}) {
    for (const std::size_t metric_threads : {1, 2, 8}) {
      MultilevelParams params = base;
      params.flow.threads = threads;
      params.flow.metric_threads = metric_threads;
      const MultilevelResult result = RunMultilevelFlow(hg, spec, params);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " metric_threads=" + std::to_string(metric_threads));
      EXPECT_DOUBLE_EQ(result.cost, reference.cost);
      EXPECT_EQ(result.coarsen_levels, reference.coarsen_levels);
      EXPECT_DOUBLE_EQ(result.coarse_cost, reference.coarse_cost);
      ASSERT_EQ(result.level_stats.size(), reference.level_stats.size());
      for (std::size_t i = 0; i < result.level_stats.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.level_stats[i].projected_cost,
                         reference.level_stats[i].projected_cost);
        EXPECT_DOUBLE_EQ(result.level_stats[i].refined_cost,
                         reference.level_stats[i].refined_cost);
      }
      for (NodeId v = 0; v < hg.num_nodes(); ++v)
        ASSERT_EQ(result.partition.leaf_of(v), reference.partition.leaf_of(v))
            << "node " << v;
    }
  }
}

TEST(MultilevelFlowTest, FlatPathBelowThresholdMatchesRunHtpFlow) {
  const Hypergraph hg = TestCircuit(120, 3);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.4);
  MultilevelParams params = FastParams(800);  // 120 <= 800: stays flat
  const MultilevelResult ml = RunMultilevelFlow(hg, spec, params);
  const HtpFlowResult flat = RunHtpFlow(hg, spec, params.flow);
  EXPECT_EQ(ml.coarsen_levels, 0u);
  EXPECT_TRUE(ml.level_stats.empty());
  EXPECT_DOUBLE_EQ(ml.cost, flat.cost);
  EXPECT_DOUBLE_EQ(ml.coarse_cost, flat.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    ASSERT_EQ(ml.partition.leaf_of(v), flat.partition.leaf_of(v));
}

TEST(MultilevelFlowTest, GoldenFigure2StaysOptimal) {
  // The figure-2 golden bound holds on the multilevel entry point. The
  // instance is tiny, so the spec admits no supernodes (FeasibleClusterCap
  // bottoms out at the unit granularity) and the driver runs flat — which
  // is exactly the contract: --multilevel never makes small inputs worse.
  const Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  MultilevelParams params;
  params.flow.seed = 1;
  params.coarsen_threshold = 8;  // would coarsen if the spec allowed it
  const MultilevelResult result = RunMultilevelFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
  EXPECT_EQ(result.coarsen_levels, 0u);
  EXPECT_NEAR(result.cost, kFigure2OptimalCost, 1e-9);
}

TEST(MultilevelFlowTest, SampledOracleIsValidDeterministicAndExactAtOne) {
  const Hypergraph hg = TestCircuit(400, 21);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.5);
  HtpFlowParams exact;
  exact.iterations = 1;
  exact.seed = 5;
  HtpFlowParams one = exact;
  one.injection.oracle_sample = 1.0;  // documented as exact
  HtpFlowParams sampled = exact;
  sampled.injection.oracle_sample = 0.3;

  const HtpFlowResult a = RunHtpFlow(hg, spec, exact);
  const HtpFlowResult b = RunHtpFlow(hg, spec, one);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    ASSERT_EQ(a.partition.leaf_of(v), b.partition.leaf_of(v));

  const HtpFlowResult s1 = RunHtpFlow(hg, spec, sampled);
  const HtpFlowResult s2 = RunHtpFlow(hg, spec, sampled);
  RequireValidPartition(s1.partition, spec);
  EXPECT_DOUBLE_EQ(s1.cost, s2.cost);
  HtpFlowParams sampled_mt = sampled;
  sampled_mt.metric_threads = 4;
  const HtpFlowResult s3 = RunHtpFlow(hg, spec, sampled_mt);
  EXPECT_DOUBLE_EQ(s1.cost, s3.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    ASSERT_EQ(s1.partition.leaf_of(v), s3.partition.leaf_of(v));
}

TEST(MultilevelFlowTest, ExpiredBudgetStillYieldsValidPartition) {
  const Hypergraph hg = TestCircuit(1200, 31);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.5);
  MultilevelParams params = FastParams(200);
  params.flow.budget.time_budget_seconds = 0.0;  // already expired
  const MultilevelResult result = RunMultilevelFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
  EXPECT_NEAR(result.cost, PartitionCost(result.partition, spec), 1e-9);
}

}  // namespace
}  // namespace htp
