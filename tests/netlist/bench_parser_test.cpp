#include "netlist/bench_parser.hpp"

#include <gtest/gtest.h>

namespace htp {
namespace {

TEST(BenchParser, ParsesC17) {
  const BenchCircuit c17 = ParseBench(C17BenchText());
  EXPECT_EQ(c17.num_gates, 6u);
  EXPECT_EQ(c17.num_primary_inputs, 5u);
  EXPECT_EQ(c17.num_primary_outputs, 2u);
  EXPECT_EQ(c17.hg.num_nodes(), 6u);
  // Nets with >= 2 connected gates: signal 3 (feeds gates 10,11), signal 11
  // (feeds 16,19 + driver), signals 10, 16, 19 (driver + one sink = 2 pins
  // each except 16 which feeds 22 and 23).
  // Just check structural sanity: every net degree in [2, 3].
  for (NetId e = 0; e < c17.hg.num_nets(); ++e) {
    EXPECT_GE(c17.hg.net_degree(e), 2u);
    EXPECT_LE(c17.hg.net_degree(e), 3u);
  }
  EXPECT_EQ(c17.hg.num_nets(), 5u);  // 3, 10, 11, 16, 19
}

TEST(BenchParser, PadsOption) {
  const BenchCircuit with_pads =
      ParseBench(C17BenchText(), BenchParseOptions{.include_pads = true});
  // 6 gates + 5 input pads.
  EXPECT_EQ(with_pads.hg.num_nodes(), 11u);
  // Every PI signal now has a pad pin, so PI signals with one sink also
  // become 2-pin nets: signals 1,2,3,6,7 + internal 10,11,16,19.
  EXPECT_EQ(with_pads.hg.num_nets(), 9u);
}

TEST(BenchParser, HandlesCommentsAndWhitespace) {
  const BenchCircuit c = ParseBench(R"(
# full-line comment
  INPUT( x )   # trailing comment
INPUT(y)
OUTPUT(z)

z = AND( x , y )
)");
  EXPECT_EQ(c.num_gates, 1u);
  EXPECT_EQ(c.num_primary_inputs, 2u);
}

TEST(BenchParser, ErrorsCarryLineNumbers) {
  try {
    ParseBench("INPUT(a)\nb = AND(a\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchParser, RejectsUndefinedSignals) {
  EXPECT_THROW(ParseBench("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n"), Error);
}

TEST(BenchParser, RejectsDuplicateDefinitions) {
  EXPECT_THROW(ParseBench("INPUT(a)\nINPUT(a)\n"), Error);
  EXPECT_THROW(
      ParseBench("INPUT(a)\nINPUT(b)\nc = AND(a,b)\nc = OR(a,b)\n"), Error);
}

TEST(BenchParser, RejectsUndefinedOutputs) {
  EXPECT_THROW(ParseBench("INPUT(a)\nOUTPUT(nope)\n"), Error);
}

TEST(BenchParser, RejectsMalformedLines) {
  EXPECT_THROW(ParseBench("WIBBLE(a)\n"), Error);
  EXPECT_THROW(ParseBench("a = \n"), Error);
  EXPECT_THROW(ParseBench("a = AND()\n"), Error);
  EXPECT_THROW(ParseBench("= AND(a,b)\n"), Error);
}

TEST(BenchParser, MissingFileThrows) {
  EXPECT_THROW(ParseBenchFile("/nonexistent/file.bench"), Error);
}

TEST(BenchParser, SequentialCellsAccepted) {
  const BenchCircuit c = ParseBench(R"(
INPUT(clk_in)
OUTPUT(q)
d = NOT(clk_in)
q = DFF(d)
)");
  EXPECT_EQ(c.num_gates, 2u);
}

}  // namespace
}  // namespace htp
