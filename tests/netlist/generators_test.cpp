#include "netlist/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr_view.hpp"
#include "netlist/subhypergraph.hpp"

namespace htp {
namespace {

TEST(RentCircuit, MatchesRequestedGateCount) {
  RentCircuitParams params;
  params.num_gates = 500;
  params.num_primary_inputs = 40;
  params.seed = 3;
  Hypergraph hg = RentCircuit(params);
  EXPECT_EQ(hg.num_nodes(), 500u);
  EXPECT_GT(hg.num_nets(), 300u);  // most signals fan out
  EXPECT_GT(hg.num_pins(), hg.num_nets());
  EXPECT_TRUE(hg.unit_sizes());
}

TEST(RentCircuit, DeterministicForSeed) {
  RentCircuitParams params;
  params.num_gates = 200;
  params.num_primary_inputs = 20;
  params.seed = 42;
  Hypergraph a = RentCircuit(params);
  Hypergraph b = RentCircuit(params);
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (NetId e = 0; e < a.num_nets(); ++e) {
    const auto pa = a.pins(e);
    const auto pb = b.pins(e);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(RentCircuit, DifferentSeedsDiffer) {
  RentCircuitParams params;
  params.num_gates = 200;
  params.num_primary_inputs = 20;
  params.seed = 1;
  Hypergraph a = RentCircuit(params);
  params.seed = 2;
  Hypergraph b = RentCircuit(params);
  // Same node count, but the wiring should differ.
  bool differs = a.num_nets() != b.num_nets() || a.num_pins() != b.num_pins();
  if (!differs) {
    for (NetId e = 0; e < a.num_nets() && !differs; ++e) {
      const auto pa = a.pins(e);
      const auto pb = b.pins(e);
      differs = pa.size() != pb.size() ||
                !std::equal(pa.begin(), pa.end(), pb.begin());
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RentCircuit, LocalityRespondsToEscapeProbability) {
  // With lower escape probability, more nets should stay within small index
  // windows (regions are contiguous index ranges).
  auto avg_net_index_spread = [](const Hypergraph& hg) {
    double total = 0.0;
    for (NetId e = 0; e < hg.num_nets(); ++e) {
      NodeId lo = hg.num_nodes(), hi = 0;
      for (NodeId v : hg.pins(e)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      total += hi - lo;
    }
    return total / static_cast<double>(hg.num_nets());
  };
  RentCircuitParams local;
  local.num_gates = 800;
  local.num_primary_inputs = 50;
  local.escape_probability = 0.05;
  local.seed = 9;
  RentCircuitParams global = local;
  global.escape_probability = 0.9;
  EXPECT_LT(avg_net_index_spread(RentCircuit(local)),
            0.5 * avg_net_index_spread(RentCircuit(global)));
}

TEST(RentCircuit, ValidatesParameters) {
  RentCircuitParams params;
  params.num_gates = 1;
  EXPECT_THROW(RentCircuit(params), Error);
  params.num_gates = 10;
  params.num_primary_inputs = 0;
  EXPECT_THROW(RentCircuit(params), Error);
}

TEST(ArrayMultiplier, HasC6288LikeScale) {
  Hypergraph hg = ArrayMultiplier(16);
  // c6288 has 2416 gates; the NOR-cell reconstruction lands in the same
  // range (structure, not exact count, is what matters).
  EXPECT_GT(hg.num_nodes(), 2000u);
  EXPECT_LT(hg.num_nodes(), 2800u);
  EXPECT_TRUE(hg.unit_sizes());
  // The array is one connected block.
  EXPECT_EQ(ConnectedComponents(hg).count, 1u);
}

TEST(ArrayMultiplier, ScalesQuadratically) {
  const auto n4 = ArrayMultiplier(4).num_nodes();
  const auto n8 = ArrayMultiplier(8).num_nodes();
  const auto n16 = ArrayMultiplier(16).num_nodes();
  EXPECT_GT(n8, 3u * n4);
  EXPECT_GT(n16, 3u * n8);
  EXPECT_THROW(ArrayMultiplier(1), Error);
}

TEST(ArrayMultiplier, InputsHaveHighFanout) {
  // Each a[j]/b[i] input feeds a full row/column of partial products, so the
  // largest net degree should be about the bit width.
  Hypergraph hg = ArrayMultiplier(8);
  std::size_t max_deg = 0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    max_deg = std::max(max_deg, hg.net_degree(e));
  EXPECT_GE(max_deg, 8u);
}

// The multilevel driver feeds 100k-node generated circuits into the CSR hot
// path, so the generator must stay sound past 64k nodes (no 16-bit indices
// anywhere) and the CsrView 32-bit pin-offset budget must still hold for
// Rent-style netlists of that size (see the scale-limit note in
// graph/csr_view.hpp).
TEST(RentCircuit, Beyond64kNodesBuildsAndFitsCsrOffsets) {
  RentCircuitParams params;
  params.num_gates = 70000;
  params.num_primary_inputs = 2800;
  params.seed = 7;
  Hypergraph hg = RentCircuit(params);
  ASSERT_EQ(hg.num_nodes(), 70000u);
  EXPECT_GT(hg.num_nodes(), 65536u);  // past any 16-bit rollover point
  EXPECT_EQ(ConnectedComponents(hg).count, 1u);
  // Pin ids above 64k must survive the round trip through the net lists.
  NodeId max_pin = 0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    for (NodeId v : hg.pins(e)) max_pin = std::max(max_pin, v);
  EXPECT_GT(max_pin, 65536u);
  const CsrView view(hg);  // would throw if 32-bit pin offsets overflowed
  EXPECT_EQ(view.num_nodes(), hg.num_nodes());
}

TEST(Iscas85Suite, AllCircuitsBuild) {
  for (const SuiteEntry& entry : Iscas85Suite()) {
    Hypergraph hg = MakeIscas85Like(entry.name);
    if (entry.name == "c6288") {
      EXPECT_NEAR(static_cast<double>(hg.num_nodes()),
                  static_cast<double>(entry.target_gates),
                  0.15 * static_cast<double>(entry.target_gates));
    } else {
      EXPECT_EQ(hg.num_nodes(), entry.target_gates);
    }
    EXPECT_EQ(ConnectedComponents(hg).count, 1u) << entry.name;
  }
}

TEST(Iscas85Suite, UnknownNameThrows) {
  EXPECT_THROW(MakeIscas85Like("c9999"), Error);
}

TEST(Iscas85Suite, PaperOrderAndNames) {
  const auto& suite = Iscas85Suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "c1355");
  EXPECT_EQ(suite[1].name, "c2670");
  EXPECT_EQ(suite[2].name, "c3540");
  EXPECT_EQ(suite[3].name, "c6288");
  EXPECT_EQ(suite[4].name, "c7552");
}

}  // namespace
}  // namespace htp
