#include "netlist/hmetis_io.hpp"

#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(HmetisIo, ParsesUnweighted) {
  Hypergraph hg = ParseHmetis(R"(% a comment
4 7
1 2
1 7 5 6
5 6 4
2 3 4
)");
  EXPECT_EQ(hg.num_nodes(), 7u);
  EXPECT_EQ(hg.num_nets(), 4u);
  EXPECT_EQ(hg.net_degree(1), 4u);
  EXPECT_TRUE(hg.unit_sizes());
  // Pins are converted to 0-based ids.
  const auto pins = hg.pins(0);
  EXPECT_EQ(pins[0], 0u);
  EXPECT_EQ(pins[1], 1u);
}

TEST(HmetisIo, ParsesWeights) {
  Hypergraph hg = ParseHmetis(R"(3 4 11
2 1 2
5 3 4
1 2 3
10
20
30
40
)");
  EXPECT_DOUBLE_EQ(hg.net_capacity(0), 2.0);
  EXPECT_DOUBLE_EQ(hg.net_capacity(1), 5.0);
  EXPECT_DOUBLE_EQ(hg.node_size(2), 30.0);
  EXPECT_DOUBLE_EQ(hg.total_size(), 100.0);
}

TEST(HmetisIo, DropsDegenerateNets) {
  Hypergraph hg = ParseHmetis("2 3\n1 1 1\n2 3\n");
  EXPECT_EQ(hg.num_nets(), 1u);  // the self-net collapses and is dropped
}

TEST(HmetisIo, RejectsMalformedInput) {
  EXPECT_THROW(ParseHmetis(""), Error);
  EXPECT_THROW(ParseHmetis("x y\n"), Error);
  EXPECT_THROW(ParseHmetis("1 2 7\n1 2\n"), Error);      // bad fmt
  EXPECT_THROW(ParseHmetis("2 3\n1 2\n"), Error);        // missing net line
  EXPECT_THROW(ParseHmetis("1 3\n1 4\n"), Error);        // pin out of range
  EXPECT_THROW(ParseHmetis("1 3\n1 2\n1 2\n"), Error);   // trailing content
  EXPECT_THROW(ParseHmetis("1 3 1\n0 1 2\n"), Error);    // nonpositive weight
  EXPECT_THROW(ParseHmetis("1 2\n1 junk\n"), Error);     // junk on net line
}

TEST(HmetisIo, ErrorsMentionLineNumbers) {
  try {
    ParseHmetis("2 3\n1 2\n1 9\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(HmetisIo, RoundTripsRandomHypergraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(30, 25, 5, seed);
    Hypergraph back = ParseHmetis(WriteHmetis(hg));
    ASSERT_EQ(back.num_nodes(), hg.num_nodes());
    ASSERT_EQ(back.num_nets(), hg.num_nets());
    ASSERT_EQ(back.num_pins(), hg.num_pins());
    for (NetId e = 0; e < hg.num_nets(); ++e) {
      const auto a = hg.pins(e);
      const auto b = back.pins(e);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
      EXPECT_DOUBLE_EQ(back.net_capacity(e), hg.net_capacity(e));
    }
  }
}

TEST(HmetisIo, RoundTripsWeights) {
  HypergraphBuilder builder;
  builder.add_node(2.0);
  builder.add_node(3.5);
  builder.add_node(1.0);
  builder.add_net({0u, 1u}, 4.0);
  builder.add_net({1u, 2u}, 0.25);
  Hypergraph hg = builder.build();
  Hypergraph back = ParseHmetis(WriteHmetis(hg));
  EXPECT_DOUBLE_EQ(back.node_size(1), 3.5);
  EXPECT_DOUBLE_EQ(back.net_capacity(1), 0.25);
}

TEST(HmetisIo, WriterPicksSmallestFormat) {
  Hypergraph plain = testutil::RandomConnectedHypergraph(6, 3, 3, 2);
  const std::string text = WriteHmetis(plain);
  // Header must not announce weights for an unweighted hypergraph: exactly
  // two tokens (nets, nodes), no fmt column.
  const std::size_t header_start = text.find('\n') + 1;
  const std::size_t header_end = text.find('\n', header_start);
  std::istringstream header(
      text.substr(header_start, header_end - header_start));
  std::string token;
  std::size_t tokens = 0;
  while (header >> token) ++tokens;
  EXPECT_EQ(tokens, 2u);
}

TEST(HmetisIo, FileHelpers) {
  Hypergraph hg = MakeIscas85Like("c1355");
  const std::string path = ::testing::TempDir() + "/htp_roundtrip.hgr";
  WriteHmetisFile(hg, path);
  Hypergraph back = ParseHmetisFile(path);
  EXPECT_EQ(back.num_nodes(), hg.num_nodes());
  EXPECT_EQ(back.num_pins(), hg.num_pins());
  std::remove(path.c_str());
  EXPECT_THROW(ParseHmetisFile("/nonexistent.hgr"), Error);
}

}  // namespace
}  // namespace htp
