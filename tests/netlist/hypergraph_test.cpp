#include "netlist/hypergraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace htp {
namespace {

TEST(HypergraphBuilder, BuildsSimpleNetlist) {
  HypergraphBuilder builder;
  const NodeId a = builder.add_node(1.0, "a");
  const NodeId b = builder.add_node(2.0, "b");
  const NodeId c = builder.add_node(3.0, "c");
  builder.add_net({a, b}, 1.0, "n0");
  builder.add_net({a, b, c}, 2.5, "n1");
  Hypergraph hg = builder.build();

  EXPECT_EQ(hg.num_nodes(), 3u);
  EXPECT_EQ(hg.num_nets(), 2u);
  EXPECT_EQ(hg.num_pins(), 5u);
  EXPECT_DOUBLE_EQ(hg.total_size(), 6.0);
  EXPECT_FALSE(hg.unit_sizes());
  EXPECT_DOUBLE_EQ(hg.node_size(b), 2.0);
  EXPECT_DOUBLE_EQ(hg.net_capacity(1), 2.5);
  EXPECT_EQ(hg.node_name(c), "c");
  EXPECT_EQ(hg.net_name(1), "n1");
}

TEST(HypergraphBuilder, MergesDuplicatePins) {
  HypergraphBuilder builder;
  const NodeId a = builder.add_node();
  const NodeId b = builder.add_node();
  builder.add_net({a, b, a, b, a});
  Hypergraph hg = builder.build();
  ASSERT_EQ(hg.num_nets(), 1u);
  EXPECT_EQ(hg.net_degree(0), 2u);
}

TEST(HypergraphBuilder, DropsDegenerateNets) {
  HypergraphBuilder builder;
  const NodeId a = builder.add_node();
  const NodeId b = builder.add_node();
  builder.add_net({a});
  builder.add_net({a, a, a});
  builder.add_net({a, b});
  EXPECT_EQ(builder.dropped_nets(), 2u);
  Hypergraph hg = builder.build();
  EXPECT_EQ(hg.num_nets(), 1u);
}

TEST(HypergraphBuilder, RejectsBadInputs) {
  HypergraphBuilder builder;
  EXPECT_THROW(builder.add_node(0.0), Error);
  EXPECT_THROW(builder.add_node(-1.0), Error);
  const NodeId a = builder.add_node();
  const NodeId b = builder.add_node();
  EXPECT_THROW(builder.add_net({a, b}, 0.0), Error);
  EXPECT_THROW(builder.add_net({a, 99u}), Error);
}

TEST(Hypergraph, CrossIndexConsistency) {
  HypergraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u});
  builder.add_net({2u, 3u});
  builder.add_net({3u, 4u, 5u, 0u});
  Hypergraph hg = builder.build();

  // Node->net and net->pin views must agree.
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    for (NetId e : hg.nets(v)) {
      const auto pins = hg.pins(e);
      EXPECT_NE(std::find(pins.begin(), pins.end(), v), pins.end());
    }
  }
  std::size_t total = 0;
  for (NodeId v = 0; v < hg.num_nodes(); ++v) total += hg.node_degree(v);
  EXPECT_EQ(total, hg.num_pins());
}

TEST(Hypergraph, BoundsChecked) {
  HypergraphBuilder builder;
  builder.add_node();
  builder.add_node();
  builder.add_net({0u, 1u});
  Hypergraph hg = builder.build();
  EXPECT_THROW(hg.pins(1), Error);
  EXPECT_THROW(hg.nets(2), Error);
  EXPECT_THROW(hg.node_size(5), Error);
  EXPECT_THROW(hg.net_capacity(7), Error);
}

TEST(Hypergraph, ComputeStats) {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({0u, 1u, 2u, 3u});
  Hypergraph hg = builder.build();
  const HypergraphStats st = ComputeStats(hg);
  EXPECT_EQ(st.nodes, 4u);
  EXPECT_EQ(st.nets, 2u);
  EXPECT_EQ(st.pins, 6u);
  EXPECT_EQ(st.max_net_degree, 4u);
  EXPECT_DOUBLE_EQ(st.avg_net_degree, 3.0);
}

TEST(Hypergraph, EmptyIsWellFormed) {
  HypergraphBuilder builder;
  Hypergraph hg = builder.build();
  EXPECT_EQ(hg.num_nodes(), 0u);
  EXPECT_EQ(hg.num_nets(), 0u);
  EXPECT_EQ(hg.num_pins(), 0u);
  EXPECT_TRUE(hg.unit_sizes());
}

TEST(Hypergraph, BuilderResetAfterBuild) {
  HypergraphBuilder builder;
  builder.add_node();
  builder.add_node();
  builder.add_net({0u, 1u});
  (void)builder.build();
  EXPECT_EQ(builder.num_nodes(), 0u);
  Hypergraph second = builder.build();
  EXPECT_EQ(second.num_nodes(), 0u);
  EXPECT_EQ(second.num_nets(), 0u);
}

}  // namespace
}  // namespace htp
