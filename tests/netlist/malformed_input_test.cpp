// Malformed-input hardening for the two text front-ends (bench_parser,
// hmetis_io): hostile or truncated input must raise htp::Error — never
// crash, never allocate unboundedly, never invoke UB. The whole suite also
// runs under the asan-ubsan preset, which is what turns "never UB" from a
// comment into a checked property.
#include <gtest/gtest.h>

#include <string>

#include "netlist/bench_parser.hpp"
#include "netlist/hmetis_io.hpp"
#include "netlist/rng.hpp"

namespace htp {
namespace {

// ---- bench ----------------------------------------------------------------

TEST(MalformedBench, TruncatedGateLines) {
  EXPECT_THROW(ParseBench("INPUT(a)\nx = NAND(a"), Error);      // no ')'
  EXPECT_THROW(ParseBench("INPUT(a)\nx = NAND(a,)"), Error);    // empty arg
  EXPECT_THROW(ParseBench("INPUT(a)\nx = NAND(,a)"), Error);    // empty arg
  EXPECT_THROW(ParseBench("INPUT(a)\nx = NAND()"), Error);      // no inputs
  EXPECT_THROW(ParseBench("INPUT(a)\nx ="), Error);             // no rhs
  EXPECT_THROW(ParseBench("INPUT(a)\n= NAND(a)"), Error);       // no output
  EXPECT_THROW(ParseBench("INPUT(a"), Error);                   // no ')'
  EXPECT_THROW(ParseBench("INPUT()"), Error);                   // empty name
  EXPECT_THROW(ParseBench("OUTPUT)a("), Error);                 // ')' first
}

TEST(MalformedBench, DuplicateGateNames) {
  EXPECT_THROW(ParseBench("INPUT(a)\nx = BUF(a)\nx = NOT(a)\n"), Error);
  EXPECT_THROW(ParseBench("INPUT(a)\nINPUT(a)\n"), Error);
  EXPECT_THROW(ParseBench("INPUT(a)\na = BUF(a)\n"), Error);  // PI redefined
}

TEST(MalformedBench, UndefinedAndUnknownDirectives) {
  EXPECT_THROW(ParseBench("x = AND(ghost, ghost2)\n"), Error);
  EXPECT_THROW(ParseBench("INPUT(a)\nOUTPUT(missing)\n"), Error);
  EXPECT_THROW(ParseBench("WIBBLE(a)\n"), Error);
}

TEST(MalformedBench, EveryTruncationOfC17ThrowsOrParses) {
  // Chopping a valid file at every byte exercises each parser state with an
  // unexpected EOF. Any outcome is fine except a crash or non-Error throw.
  const std::string text{C17BenchText()};
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    try {
      ParseBench(std::string_view(text).substr(0, cut));
    } catch (const Error&) {
      // expected for most cuts
    }
  }
}

TEST(MalformedBench, RandomByteMutationsNeverCrash) {
  const std::string original{C17BenchText()};
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = original;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i)
      text[rng.next_below(text.size())] =
          static_cast<char>(rng.next_below(256));
    try {
      ParseBench(text);
    } catch (const Error&) {
    }
  }
}

// ---- hmetis ---------------------------------------------------------------

TEST(MalformedHmetis, TruncatedAndEmptyNets) {
  EXPECT_THROW(ParseHmetis("2 4\n1 2\n"), Error);        // net line missing
  EXPECT_THROW(ParseHmetis("1 4 1\n2\n"), Error);        // weight, no pins
  EXPECT_THROW(ParseHmetis("1 4 1\n\n"), Error);         // blank = truncated
  EXPECT_THROW(ParseHmetis("1 4 10\n1 2\n3\n"), Error);  // node weights short
}

TEST(MalformedHmetis, OutOfRangePins) {
  EXPECT_THROW(ParseHmetis("1 3\n1 4\n"), Error);   // above num_nodes
  EXPECT_THROW(ParseHmetis("1 3\n0 1\n"), Error);   // hmetis pins are 1-based
  EXPECT_THROW(ParseHmetis("1 3\n-2 1\n"), Error);  // negative
}

TEST(MalformedHmetis, HostileHeaderCountsDoNotAllocate) {
  // A header declaring astronomically more nets/nodes than the input could
  // possibly spell out must be rejected up front, not drive a giant
  // reserve/resize.
  EXPECT_THROW(ParseHmetis("99999999999 2\n1 2\n"), Error);
  EXPECT_THROW(ParseHmetis("1 99999999999\n1 2\n"), Error);
  EXPECT_THROW(ParseHmetis("1152921504606846976 1152921504606846976\n"),
               Error);
}

TEST(MalformedHmetis, EveryTruncationThrowsOrParses) {
  const std::string text = "% c\n3 4 11\n2 1 2\n5 3 4\n1 2 3\n10\n20\n30\n40\n";
  ASSERT_NO_THROW(ParseHmetis(text));
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    try {
      ParseHmetis(std::string_view(text).substr(0, cut));
    } catch (const Error&) {
    }
  }
}

TEST(MalformedHmetis, RandomByteMutationsNeverCrash) {
  const std::string original = "3 4 11\n2 1 2\n5 3 4\n1 2 3\n1\n2\n3\n4\n";
  Rng rng(1997);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = original;
    const std::size_t flips = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < flips; ++i)
      text[rng.next_below(text.size())] =
          static_cast<char>(rng.next_below(256));
    try {
      ParseHmetis(text);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace htp
