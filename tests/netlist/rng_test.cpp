#include "netlist/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace htp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_differ = false;
  for (int i = 0; i < 16; ++i) any_differ |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_differ);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.next_below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_GT(histogram[b], kDraws / 10 - kDraws / 50);
    EXPECT_LT(histogram[b], kDraws / 10 + kDraws / 50);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(9);
  Rng fork_a = parent.fork(1);
  Rng fork_b = parent.fork(2);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) {
    values.insert(fork_a.next_u64());
    values.insert(fork_b.next_u64());
  }
  EXPECT_EQ(values.size(), 64u);  // no collisions between streams
}

TEST(Rng, ShuffleIsAPermutationAndDeterministic) {
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> w = v;
  Rng a(3), b(3);
  a.shuffle(v);
  b.shuffle(w);
  EXPECT_EQ(v, w);
  std::sort(w.begin(), w.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(w[i], i);  // still a permutation
  // And actually shuffled.
  bool moved = false;
  for (int i = 0; i < 50; ++i) moved |= v[i] != i;
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace htp
