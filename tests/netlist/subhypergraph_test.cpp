#include "netlist/subhypergraph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace htp {
namespace {

Hypergraph Sample() {
  HypergraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.add_node(1.0 + i);
  builder.add_net({0u, 1u, 2u}, 2.0, "abc");
  builder.add_net({2u, 3u}, 1.0, "cd");
  builder.add_net({3u, 4u, 5u}, 3.0, "def");
  builder.add_net({0u, 5u}, 1.5, "af");
  return builder.build();
}

TEST(InducedSubHypergraph, KeepsOnlyInteriorNets) {
  Hypergraph hg = Sample();
  const std::vector<NodeId> keep{0, 1, 2, 3};
  SubHypergraph sub = InducedSubHypergraph(hg, keep);

  EXPECT_EQ(sub.hg.num_nodes(), 4u);
  // Net "abc" survives whole; "cd" survives; "def" restricted to {3} is
  // dropped; "af" restricted to {0} is dropped.
  ASSERT_EQ(sub.hg.num_nets(), 2u);
  EXPECT_EQ(sub.net_to_parent.size(), 2u);
  for (NetId e = 0; e < sub.hg.num_nets(); ++e) {
    const NetId pe = sub.net_to_parent[e];
    EXPECT_DOUBLE_EQ(sub.hg.net_capacity(e), hg.net_capacity(pe));
  }
  // Node sizes and mapping round-trip.
  for (NodeId v = 0; v < sub.hg.num_nodes(); ++v) {
    EXPECT_EQ(sub.node_to_parent[v], keep[v]);
    EXPECT_DOUBLE_EQ(sub.hg.node_size(v), hg.node_size(keep[v]));
  }
}

TEST(InducedSubHypergraph, DegreeZeroNodesAreKept) {
  // The KEEP contract (subhypergraph.hpp): a selected node whose every net
  // falls below two interior pins stays in the subhypergraph at degree 0 —
  // its size still consumes block capacity. tests/incremental probes the
  // same contract from the ApplyDelta side.
  Hypergraph hg = Sample();
  // Node 4 pins only "def"; restricted to {3,4} that net keeps 2 pins, but
  // restricted to {1,4} every net drops below 2 interior pins for node 4.
  const std::vector<NodeId> keep{1, 4};
  SubHypergraph sub = InducedSubHypergraph(hg, keep);
  ASSERT_EQ(sub.hg.num_nodes(), 2u);
  EXPECT_EQ(sub.hg.num_nets(), 0u);
  EXPECT_EQ(sub.hg.nets(0).size(), 0u);
  EXPECT_EQ(sub.hg.nets(1).size(), 0u);
  EXPECT_DOUBLE_EQ(sub.hg.node_size(0), hg.node_size(1));
  EXPECT_DOUBLE_EQ(sub.hg.node_size(1), hg.node_size(4));
  EXPECT_DOUBLE_EQ(sub.hg.total_size(), hg.node_size(1) + hg.node_size(4));
}

TEST(InducedSubHypergraph, RejectsDuplicates) {
  Hypergraph hg = Sample();
  const std::vector<NodeId> twice{0, 0};
  EXPECT_THROW(InducedSubHypergraph(hg, twice), Error);
}

TEST(InducedSubHypergraph, EmptySelection) {
  Hypergraph hg = Sample();
  SubHypergraph sub = InducedSubHypergraph(hg, {});
  EXPECT_EQ(sub.hg.num_nodes(), 0u);
  EXPECT_EQ(sub.hg.num_nets(), 0u);
}

TEST(InducedSubHypergraph, PreservesPinMultisets) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(40, 60, 5, 7);
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < hg.num_nodes(); v += 2) keep.push_back(v);
  SubHypergraph sub = InducedSubHypergraph(hg, keep);
  // Every surviving net's pins map exactly to the parent pins ∩ keep.
  std::vector<char> kept(hg.num_nodes(), 0);
  for (NodeId v : keep) kept[v] = 1;
  for (NetId e = 0; e < sub.hg.num_nets(); ++e) {
    const NetId pe = sub.net_to_parent[e];
    std::size_t expect = 0;
    for (NodeId pv : hg.pins(pe)) expect += kept[pv];
    EXPECT_EQ(sub.hg.net_degree(e), expect);
    EXPECT_GE(sub.hg.net_degree(e), 2u);
  }
}

TEST(ContractClusters, MergesAndMaps) {
  Hypergraph hg = Sample();
  // Clusters: {0,1,2} -> 0, {3,4,5} -> 1.
  const std::vector<BlockId> cluster{0, 0, 0, 1, 1, 1};
  SubHypergraph sub = ContractClusters(hg, cluster, 2);
  EXPECT_EQ(sub.hg.num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(sub.hg.node_size(0), 1.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(sub.hg.node_size(1), 4.0 + 5.0 + 6.0);
  // Nets fully inside a cluster vanish ("abc", "def"); "cd" and "af" become
  // parallel 2-pin nets between the supernodes.
  ASSERT_EQ(sub.hg.num_nets(), 2u);
  for (NetId e = 0; e < sub.hg.num_nets(); ++e)
    EXPECT_EQ(sub.hg.net_degree(e), 2u);
}

TEST(ContractClusters, RejectsEmptyCluster) {
  Hypergraph hg = Sample();
  const std::vector<BlockId> cluster{0, 0, 0, 0, 0, 0};
  EXPECT_THROW(ContractClusters(hg, cluster, 2), Error);  // cluster 1 empty
}

TEST(ConnectedComponents, SplitsAndCounts) {
  HypergraphBuilder builder;
  for (int i = 0; i < 7; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u});
  builder.add_net({3u, 4u});
  builder.add_net({4u, 5u});
  Hypergraph hg = builder.build();  // node 6 isolated
  const Components comps = ConnectedComponents(hg);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.component_of[0], comps.component_of[2]);
  EXPECT_EQ(comps.component_of[3], comps.component_of[5]);
  EXPECT_NE(comps.component_of[0], comps.component_of[3]);
  EXPECT_NE(comps.component_of[6], comps.component_of[0]);
}

TEST(ConnectedComponents, RandomGraphIsConnected) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(64, 30, 4, 11);
  EXPECT_EQ(ConnectedComponents(hg).count, 1u);
}

}  // namespace
}  // namespace htp
