// Unit tests for the shared JSON emission layer (obs/json.hpp): EscapeJson
// against hostile names, JsonWriter number/comma handling, and the
// guarantee that every sink stays valid JSON no matter what strings the
// caller feeds it. These run identically with HTP_OBS_ENABLED=OFF — the
// emitters operate on plain data.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "obs/sinks.hpp"

namespace htp {
namespace {

TEST(EscapeJson, PassesPlainStringsThrough) {
  EXPECT_EQ(obs::EscapeJson("flow.compute_metric"), "flow.compute_metric");
  EXPECT_EQ(obs::EscapeJson(""), "");
}

TEST(EscapeJson, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeJson("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::EscapeJson(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(obs::EscapeJson(std::string("\x00", 1)), "\\u0000");
}

TEST(EscapeJson, LeavesMultibyteUtf8Alone) {
  // Escaping must not mangle non-ASCII bytes (circuit names could carry
  // them); JSON allows raw UTF-8 in strings.
  EXPECT_EQ(obs::EscapeJson("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EmitsNestedContainersWithAutomaticCommas) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("c1355");
  w.Key("list");
  w.BeginArray();
  w.Number(1);
  w.Number(2);
  w.BeginObject();
  w.Key("k");
  w.Bool(true);
  w.EndObject();
  w.EndArray();
  w.Key("nothing");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"name\":\"c1355\",\"list\":[1,2,{\"k\":true}],"
            "\"nothing\":null}");
}

TEST(JsonWriter, IntegralDoublesPrintAsIntegers) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Number(0.0);
  w.Number(-3.0);
  w.Number(42.0);
  w.Number(9007199254740992.0);  // 2^53: too wide for exact-int printing
  w.EndArray();
  const std::string json = std::move(w).Take();
  EXPECT_NE(json.find("[0,-3,42,"), std::string::npos);
  EXPECT_EQ(json.find("42.0"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDegradesToNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Number(std::numeric_limits<double>::infinity());
  w.Number(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonWriter, FractionalDoublesRoundTrip) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Number(1.5);
  w.Number(0.1);
  w.EndArray();
  const std::string json = std::move(w).Take();
  EXPECT_NE(json.find("1.5"), std::string::npos);
  EXPECT_NE(json.find("0.1"), std::string::npos);
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bad\"key");
  w.String("bad\nvalue");
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), "{\"bad\\\"key\":\"bad\\nvalue\"}");
}

// The satellite regression: hostile names injected through every sink must
// come out escaped, never as raw structural characters.
TEST(ObsSinksEscaping, JsonlEscapesHostileBenchScopeAndNames) {
  obs::Snapshot snap;
  snap.counters.push_back(
      {"evil\"name\\with\njunk", obs::CounterKind::kSum, 7});
  snap.timers.push_back({"timer\"quoted", 1, 10, 10, 10});
  obs::HistogramValue h;
  h.name = "hist\twith\ttabs";
  h.count = 1;
  h.sum = 2;
  h.min = 2;
  h.max = 2;
  h.buckets = {0, 0, 1};
  snap.histograms.push_back(h);
  std::ostringstream out;
  obs::WriteJsonlSnapshot(out, snap, "bench\"A", "scope\\B");
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"bench\\\"A\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"scope\\\\B\""), std::string::npos);
  EXPECT_NE(jsonl.find("evil\\\"name\\\\with\\njunk"), std::string::npos);
  EXPECT_NE(jsonl.find("timer\\\"quoted"), std::string::npos);
  EXPECT_NE(jsonl.find("hist\\twith\\ttabs"), std::string::npos);
  // Raw newlines must never appear inside a row: every line is one object.
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(ObsSinksEscaping, ChromeTraceEscapesSpanNamesArgKeysAndLaneNames) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"span\"quoted", "arg\"key", 1, 1000, 500, 0});
  std::ostringstream out;
  obs::WriteChromeTrace(out, events, {"lane\"zero"});
  const std::string json = out.str();
  EXPECT_NE(json.find("span\\\"quoted"), std::string::npos);
  EXPECT_NE(json.find("arg\\\"key"), std::string::npos);
  EXPECT_NE(json.find("lane\\\"zero"), std::string::npos);
  EXPECT_EQ(json.find("span\"quoted"), std::string::npos);
}

TEST(ObsSinksEscaping, ChromeTraceNamesLanesFromTheProvidedTable) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"a", "", 0, 0, 1, 0});
  events.push_back({"b", "", 0, 0, 1, 1});
  events.push_back({"c", "", 0, 0, 1, 5});
  std::ostringstream out;
  obs::WriteChromeTrace(out, events, {"main", "worker-0"});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-0\""), std::string::npos);
  // Lanes beyond the name table keep the tid fallback.
  EXPECT_NE(json.find("\"name\":\"htp-thread-5\""), std::string::npos);
}

}  // namespace
}  // namespace htp
