// Unit tests for the htp-obs telemetry layer: deterministic shard merging
// across fork-join boundaries, snapshot/reset semantics, and the exact
// shape of the sink outputs (stats report, Chrome trace JSON, JSONL).
//
// Bodies that assert recorded values are gated on HTP_OBS_ENABLED so the
// suite also passes in a -DHTP_OBS_ENABLED=OFF build, where it instead
// pins the compiled-out contract (empty snapshots, no-op probes).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/obs.hpp"
#include "obs/sinks.hpp"
#include "runtime/thread_pool.hpp"

namespace htp {
namespace {

obs::CounterValue FindCounter(const obs::Snapshot& snap,
                              const std::string& name) {
  for (const obs::CounterValue& c : snap.counters)
    if (c.name == name) return c;
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return {};
}

obs::TimerValue FindTimer(const obs::Snapshot& snap, const std::string& name) {
  for (const obs::TimerValue& t : snap.timers)
    if (t.name == name) return t;
  ADD_FAILURE() << "timer not in snapshot: " << name;
  return {};
}

#if HTP_OBS_ENABLED

TEST(ObsRegistry, SumCounterAccumulatesOnCallingThread) {
  obs::ResetAll();
  static obs::Counter counter("test.sum_serial");
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(FindCounter(obs::TakeSnapshot(), "test.sum_serial").value, 42u);
}

TEST(ObsRegistry, ShardMergeIsDeterministicAcrossThreadCounts) {
  // Each index i adds i+1 from whatever worker runs it; the total must be
  // 1 + 2 + ... + 100 = 5050 regardless of the thread count, because the
  // per-thread shards hold plain integer sums merged at thread exit.
  static obs::Counter sum("test.merge_sum");
  static obs::Counter high_water("test.merge_max", obs::CounterKind::kMax);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    obs::ResetAll();
    ParallelFor(threads, 100, [](std::size_t i) {
      sum.Add(i + 1);
      high_water.Add(i + 1);
    });
    const obs::Snapshot snap = obs::TakeSnapshot();
    EXPECT_EQ(FindCounter(snap, "test.merge_sum").value, 5050u);
    EXPECT_EQ(FindCounter(snap, "test.merge_max").value, 100u);
    EXPECT_EQ(FindCounter(snap, "test.merge_max").kind,
              obs::CounterKind::kMax);
  }
}

TEST(ObsRegistry, TimerCellsMergeAcrossWorkers) {
  static obs::Timer timer("test.merge_timer");
  obs::ResetAll();
  ParallelFor(4, 32, [](std::size_t) { obs::ScopedTimer t(timer); });
  const obs::TimerValue merged = FindTimer(obs::TakeSnapshot(),
                                           "test.merge_timer");
  EXPECT_EQ(merged.count, 32u);
  EXPECT_GE(merged.total_ns, merged.max_ns);
  EXPECT_LE(merged.min_ns, merged.max_ns);
}

TEST(ObsRegistry, InternedButUnusedEntriesAppearWithZeros) {
  static obs::Counter counter("test.never_touched");
  static obs::Timer timer("test.never_timed");
  obs::ResetAll();
  const obs::Snapshot snap = obs::TakeSnapshot();
  EXPECT_EQ(FindCounter(snap, "test.never_touched").value, 0u);
  EXPECT_EQ(FindTimer(snap, "test.never_timed").count, 0u);
}

TEST(ObsRegistry, SnapshotIsSortedByName) {
  obs::ResetAll();
  const obs::Snapshot snap = obs::TakeSnapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  for (std::size_t i = 1; i < snap.timers.size(); ++i)
    EXPECT_LT(snap.timers[i - 1].name, snap.timers[i].name);
}

TEST(ObsRegistry, ResetZeroesTotalsAndDiscardsTrace) {
  static obs::Counter counter("test.reset_me");
  static obs::Timer timer("test.reset_timer");
  obs::ResetAll();
  obs::SetTracing(true);
  counter.Add(7);
  { obs::PhaseScope span(timer, "k", 1); }
  obs::ResetAll();
  obs::SetTracing(false);
  EXPECT_EQ(FindCounter(obs::TakeSnapshot(), "test.reset_me").value, 0u);
  EXPECT_TRUE(obs::DrainTrace().empty());
}

TEST(ObsTrace, PhaseScopeEmitsSpansOnlyWhileTracing) {
  static obs::Timer timer("test.trace_timer");
  obs::ResetAll();
  { obs::PhaseScope untraced(timer); }
  EXPECT_TRUE(obs::DrainTrace().empty()) << "tracing off by default";

  obs::SetTracing(true);
  { obs::PhaseScope traced(timer, "iter", 3); }
  obs::SetTracing(false);
  const std::vector<obs::TraceEvent> events = obs::DrainTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.trace_timer");
  EXPECT_EQ(events[0].arg_key, "iter");
  EXPECT_EQ(events[0].arg_value, 3u);
  EXPECT_TRUE(obs::DrainTrace().empty()) << "drain moves events out";
}

TEST(ObsTrace, WorkersGetTheirOwnLanes) {
  static obs::Timer timer("test.lane_timer");
  obs::ResetAll();
  obs::SetTracing(true);
  // A real pool (not the serial ParallelFor path) so spans come from
  // multiple distinct threads.
  {
    ThreadPool pool(4);
    ParallelFor(pool, 64, [](std::size_t i) {
      obs::PhaseScope span(timer, "i", i);
    });
  }
  obs::SetTracing(false);
  const std::vector<obs::TraceEvent> events = obs::DrainTrace();
  ASSERT_EQ(events.size(), 64u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    // DrainTrace sorts by (tid, ts) so each lane reads chronologically.
    const bool ordered =
        events[i - 1].tid < events[i].tid ||
        (events[i - 1].tid == events[i].tid &&
         events[i - 1].ts_ns <= events[i].ts_ns);
    EXPECT_TRUE(ordered) << "event " << i;
  }
}

obs::HistogramValue FindHistogram(const obs::Snapshot& snap,
                                  const std::string& name) {
  for (const obs::HistogramValue& h : snap.histograms)
    if (h.name == name) return h;
  ADD_FAILURE() << "histogram not in snapshot: " << name;
  return {};
}

TEST(ObsHistogram, BucketsByBitWidthWithSummaryStats) {
  static obs::Histogram histogram("test.hist_buckets");
  obs::ResetAll();
  histogram.Record(0);   // bucket 0
  histogram.Record(1);   // bucket 1: [1, 2)
  histogram.Record(2);   // bucket 2: [2, 4)
  histogram.Record(3);   // bucket 2
  histogram.Record(16);  // bucket 5: [16, 32)
  const obs::HistogramValue h =
      FindHistogram(obs::TakeSnapshot(), "test.hist_buckets");
  EXPECT_EQ(h.kind, obs::HistogramKind::kValue);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 22u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 16u);
  ASSERT_EQ(h.buckets.size(), 6u) << "trailing zero buckets are trimmed";
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 0u);
  EXPECT_EQ(h.buckets[4], 0u);
  EXPECT_EQ(h.buckets[5], 1u);
}

TEST(ObsHistogram, MergesDeterministicallyAcrossThreadCounts) {
  static obs::Histogram histogram("test.hist_merge");
  std::vector<std::uint64_t> reference_buckets;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    obs::ResetAll();
    ParallelFor(threads, 200, [](std::size_t i) { histogram.Record(i); });
    const obs::HistogramValue h =
        FindHistogram(obs::TakeSnapshot(), "test.hist_merge");
    EXPECT_EQ(h.count, 200u);
    EXPECT_EQ(h.sum, 19900u);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, 199u);
    if (reference_buckets.empty())
      reference_buckets = h.buckets;
    else
      EXPECT_EQ(h.buckets, reference_buckets);
  }
}

TEST(ObsHistogram, ScopedTimerRecordsIntoTimeKind) {
  static obs::Histogram histogram("test.hist_time",
                                  obs::HistogramKind::kTimeNs);
  obs::ResetAll();
  { obs::ScopedHistogramTimer t(histogram); }
  const obs::HistogramValue h =
      FindHistogram(obs::TakeSnapshot(), "test.hist_time");
  EXPECT_EQ(h.kind, obs::HistogramKind::kTimeNs);
  EXPECT_EQ(h.count, 1u);
  EXPECT_GE(h.max, h.min);
}

TEST(ObsEvent, RecordsPayloadInSiteOrderAndDrainsOnce) {
  static obs::Event event("test.event_basic");
  obs::ResetAll();
  event.Record({{"round", 2.0}, {"mass", 1.5}});
  std::vector<obs::EventRecord> journal = obs::DrainEvents();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].name, "test.event_basic");
  ASSERT_EQ(journal[0].fields.size(), 2u);
  EXPECT_EQ(journal[0].fields[0].first, "round");
  EXPECT_EQ(journal[0].fields[0].second, 2.0);
  EXPECT_EQ(journal[0].fields[1].first, "mass");
  EXPECT_EQ(journal[0].fields[1].second, 1.5);
  EXPECT_TRUE(obs::DrainEvents().empty()) << "drain moves the journal out";
}

TEST(ObsEvent, DrainOrderIsPayloadNotTimestamp) {
  // Record in descending payload order; the drained journal must come back
  // ascending by (name, fields) — a timestamp sort would preserve the
  // recording order instead.
  static obs::Event b_event("test.event_order_b");
  static obs::Event a_event("test.event_order_a");
  obs::ResetAll();
  b_event.Record({{"i", 1.0}});
  a_event.Record({{"i", 9.0}});
  a_event.Record({{"i", 3.0}});
  const std::vector<obs::EventRecord> journal = obs::DrainEvents();
  ASSERT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal[0].name, "test.event_order_a");
  EXPECT_EQ(journal[0].fields[0].second, 3.0);
  EXPECT_EQ(journal[1].name, "test.event_order_a");
  EXPECT_EQ(journal[1].fields[0].second, 9.0);
  EXPECT_EQ(journal[2].name, "test.event_order_b");
}

TEST(ObsEvent, JournalIsDeterministicAcrossThreadCounts) {
  static obs::Event event("test.event_merge");
  std::vector<std::vector<std::pair<std::string, double>>> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    obs::ResetAll();
    ParallelFor(threads, 50, [](std::size_t i) {
      event.Record({{"i", static_cast<double>(i)},
                    {"sq", static_cast<double>(i * i)}});
    });
    const std::vector<obs::EventRecord> journal = obs::DrainEvents();
    ASSERT_EQ(journal.size(), 50u);
    std::vector<std::vector<std::pair<std::string, double>>> payloads;
    for (const obs::EventRecord& record : journal)
      payloads.push_back(record.fields);
    if (reference.empty())
      reference = payloads;
    else
      EXPECT_EQ(payloads, reference);
  }
}

TEST(ObsEvent, ExcessFieldsAreDroppedAtTheCap) {
  static obs::Event event("test.event_cap");
  obs::ResetAll();
  event.Record({{"f0", 0.0},
                {"f1", 1.0},
                {"f2", 2.0},
                {"f3", 3.0},
                {"f4", 4.0},
                {"f5", 5.0},
                {"f6", 6.0},
                {"f7", 7.0},
                {"f8", 8.0}});
  const std::vector<obs::EventRecord> journal = obs::DrainEvents();
  ASSERT_EQ(journal.size(), 1u);
  ASSERT_EQ(journal[0].fields.size(), obs::kMaxEventFields);
  EXPECT_EQ(journal[0].fields.back().first, "f7");
}

TEST(ObsEvent, ResetDiscardsBufferedRecords) {
  static obs::Event event("test.event_reset");
  obs::ResetAll();
  event.Record({{"i", 1.0}});
  obs::ResetAll();
  EXPECT_TRUE(obs::DrainEvents().empty());
}

TEST(ObsLanes, NamesSurviveResetAndIndexByTid) {
  obs::ResetAll();
  obs::NameThisThread("main");
  obs::ResetAll();  // lane names describe live threads, not run totals
  const std::vector<std::string> names = obs::TakeLaneNames();
  bool found = false;
  for (const std::string& name : names) found |= name == "main";
  EXPECT_TRUE(found) << "NameThisThread must survive ResetAll";
}

TEST(ObsLanes, PoolWorkersAreNamedByIndex) {
  static obs::Timer timer("test.lane_name_timer");
  obs::ResetAll();
  obs::SetTracing(true);
  {
    ThreadPool pool(2);
    ParallelFor(pool, 16, [](std::size_t i) {
      obs::PhaseScope span(timer, "i", i);
    });
  }
  obs::SetTracing(false);
  obs::DrainTrace();
  const std::vector<std::string> names = obs::TakeLaneNames();
  int workers = 0;
  for (const std::string& name : names)
    if (name.rfind("worker-", 0) == 0) ++workers;
  EXPECT_GE(workers, 2) << "ThreadPool must name its workers worker-<i>";
}

#else  // HTP_OBS_ENABLED == 0

TEST(ObsRegistry, CompiledOutProbesYieldEmptySnapshots) {
  static obs::Counter counter("test.off_counter");
  static obs::Timer timer("test.off_timer");
  counter.Add(42);
  { obs::ScopedTimer t(timer); }
  obs::SetTracing(true);
  { obs::PhaseScope span(timer, "k", 1); }
  EXPECT_FALSE(obs::TracingEnabled());
  const obs::Snapshot snap = obs::TakeSnapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(obs::DrainTrace().empty());
  obs::ResetAll();
}

#endif  // HTP_OBS_ENABLED

TEST(ObsSinks, StatsReportListsEverySection) {
  obs::Snapshot snap;
  snap.counters.push_back({"flow.rounds", obs::CounterKind::kSum, 12});
  snap.counters.push_back({"build.max_depth", obs::CounterKind::kMax, 4});
  snap.timers.push_back({"fm.refine", 3, 4500000, 1000000, 2000000});
  const std::string report = obs::RenderStatsReport(snap);
  EXPECT_NE(report.find("flow.rounds"), std::string::npos);
  EXPECT_NE(report.find("12"), std::string::npos);
  EXPECT_NE(report.find("build.max_depth"), std::string::npos);
  EXPECT_NE(report.find("fm.refine"), std::string::npos);
}

TEST(ObsSinks, ChromeTraceHasMetadataAndCompleteEvents) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"flow.iteration", "iter", 2, 1000, 2500, 0});
  events.push_back({"fm.pass", "", 0, 4000, 1500, 1});
  std::ostringstream out;
  obs::WriteChromeTrace(out, events);
  const std::string json = out.str();
  // Top-level object with the traceEvents array (Chrome/Perfetto format).
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // One thread_name metadata record per lane.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("htp-thread-0"), std::string::npos);
  EXPECT_NE(json.find("htp-thread-1"), std::string::npos);
  // Complete ("X") events carry name/ts/dur (microseconds) and the arg.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flow.iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"iter\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fm.pass\""), std::string::npos);
  // Events without an argument must not emit an args object.
  EXPECT_EQ(json.find("\"args\":{}"), std::string::npos);
}

TEST(ObsSinks, ChromeTraceOfNothingIsStillValidJson) {
  std::ostringstream out;
  obs::WriteChromeTrace(out, {});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find(']'), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(ObsSinks, JsonlRowsAreTaggedAndSkipIdleTimers) {
  obs::Snapshot snap;
  snap.counters.push_back({"dijkstra.pops", obs::CounterKind::kSum, 99});
  snap.timers.push_back({"carve.find_cut", 2, 300, 100, 200});
  snap.timers.push_back({"fm.refine", 0, 0, 0, 0});
  std::ostringstream out;
  obs::WriteJsonlSnapshot(out, snap, "table2", "c1355");
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"bench\":\"table2\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"scope\":\"c1355\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"dijkstra.pops\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"carve.find_cut\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"fm.refine\""), std::string::npos)
      << "timers that never fired are noise in a per-section stream";
  // Every line is one object: as many '{' openers as '\n' terminators.
  std::size_t lines = 0, objects = 0;
  for (char ch : jsonl) {
    if (ch == '\n') ++lines;
    if (ch == '{') ++objects;
  }
  EXPECT_EQ(lines, objects);
}

}  // namespace
}  // namespace htp
