// Tests for the RunReport artifact (obs/report.hpp): section routing
// (deterministic vs wall), DeterministicSection extraction, and the
// headline contract — the deterministic section of a RunHtpFlow /
// RunMultilevelFlow report is bit-identical for every threads x
// metric_threads combination. The builder operates on plain data, so the
// shape tests run with HTP_OBS_ENABLED=OFF too; the pipeline tests then
// pin the (weaker, still exact) compiled-out artifact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/htp_flow.hpp"
#include "multilevel/multilevel_flow.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace htp {
namespace {

TEST(RunReportBuilder, RoutesSectionsByKindAndStripsTimestamps) {
  obs::Snapshot snap;
  snap.counters.push_back({"flow.rounds", obs::CounterKind::kSum, 12});
  snap.counters.push_back(
      {"driver.budget_remaining_ms", obs::CounterKind::kMax, 950});
  obs::HistogramValue value_hist;
  value_hist.name = "flow.rounds_per_metric";
  value_hist.kind = obs::HistogramKind::kValue;
  value_hist.count = 2;
  value_hist.sum = 5;
  value_hist.min = 2;
  value_hist.max = 3;
  value_hist.buckets = {0, 0, 2};
  snap.histograms.push_back(value_hist);
  obs::HistogramValue time_hist = value_hist;
  time_hist.name = "flow.compute_metric_ns";
  time_hist.kind = obs::HistogramKind::kTimeNs;
  snap.histograms.push_back(time_hist);
  snap.timers.push_back({"driver.run", 1, 5000, 5000, 5000});

  std::vector<obs::EventRecord> journal;
  obs::EventRecord record;
  record.name = "flow.round";
  record.ts_ns = 123456789;  // must NOT appear in the report
  record.fields = {{"round", 1.0}, {"metric_mass", 2.5}};
  journal.push_back(record);

  obs::RunReportBuilder rb("test_tool");
  rb.MetaString("algorithm", "flow");
  rb.MetaNumber("seed", 7);
  rb.ResultNumber("cost", 58);
  rb.ResultBool("completed", true);
  rb.WallNumber("threads", 8);
  const std::string json = rb.Render(snap, journal);

  const std::string_view det = obs::DeterministicSection(json);
  ASSERT_FALSE(det.empty());
  // Deterministic side: meta, result, pure counters, value histograms,
  // journal payloads.
  EXPECT_NE(det.find("\"algorithm\":\"flow\""), std::string_view::npos);
  EXPECT_NE(det.find("\"cost\":58"), std::string_view::npos);
  EXPECT_NE(det.find("\"completed\":true"), std::string_view::npos);
  EXPECT_NE(det.find("\"flow.rounds\":12"), std::string_view::npos);
  EXPECT_NE(det.find("\"flow.rounds_per_metric\""), std::string_view::npos);
  EXPECT_NE(det.find("\"event\":\"flow.round\""), std::string_view::npos);
  EXPECT_NE(det.find("\"metric_mass\":2.5"), std::string_view::npos);
  // Wall-only data must stay out of the deterministic slice.
  EXPECT_EQ(det.find("driver.budget_remaining_ms"), std::string_view::npos);
  EXPECT_EQ(det.find("flow.compute_metric_ns"), std::string_view::npos);
  EXPECT_EQ(det.find("\"threads\""), std::string_view::npos);
  EXPECT_EQ(det.find("driver.run"), std::string_view::npos);
  // Timestamps are stripped everywhere.
  EXPECT_EQ(json.find("123456789"), std::string::npos);
  // ... and the wall section carries what the deterministic one must not.
  EXPECT_NE(json.find("\"driver.budget_remaining_ms\":950"),
            std::string::npos);
  EXPECT_NE(json.find("\"flow.compute_metric_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":8"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"htp-run-report\""), std::string::npos);
}

TEST(RunReportBuilder, EscapesHostileMetaValues) {
  obs::RunReportBuilder rb("tool\"quoted");
  rb.MetaString("bench\nfile", "a\\b\"c");
  const std::string json = rb.Render({}, {});
  EXPECT_NE(json.find("tool\\\"quoted"), std::string::npos);
  EXPECT_NE(json.find("bench\\nfile"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b\\\"c"), std::string::npos);
}

TEST(DeterministicSection, ExtractsTheExactBraceMatchedSlice) {
  const std::string json =
      "{\"schema\":\"htp-run-report\",\"deterministic\":"
      "{\"meta\":{\"weird\":\"br{ace\\\"}\"},\"journal\":[]},"
      "\"wall\":{}}";
  const std::string_view det = obs::DeterministicSection(json);
  ASSERT_FALSE(det.empty());
  EXPECT_EQ(det.front(), '{');
  EXPECT_EQ(det.back(), '}');
  EXPECT_NE(det.find("br{ace"), std::string_view::npos);
  EXPECT_EQ(det.find("wall"), std::string_view::npos)
      << "braces inside strings must not derail the matcher";
  EXPECT_TRUE(obs::DeterministicSection("not a report").empty());
  EXPECT_TRUE(obs::DeterministicSection("{\"deterministic\":[]}").empty());
}

// The tentpole contract. Every {threads} x {metric_threads} combination
// must produce a byte-identical deterministic section: same result, same
// counter totals, same value histograms, same journal. The wall section
// (thread counts, timers) is allowed to differ — that is the whole point
// of the split.
TEST(RunReportPipeline, DeterministicSectionIsThreadCountInvariant) {
  const Hypergraph hg = MakeIscas85Like("c1355", 3);
  const HierarchySpec spec = UniformHierarchy(hg.total_size(), 3, 2, 0.10,
                                              std::vector<double>(3, 1.0));
  std::string reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (std::size_t metric_threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads
                   << " metric_threads=" << metric_threads);
      obs::ResetAll();
      obs::DrainEvents();
      HtpFlowParams params;
      params.iterations = 2;
      params.seed = 11;
      params.threads = threads;
      params.metric_threads = metric_threads;
      params.collect_report = true;
      const HtpFlowResult result = RunHtpFlow(hg, spec, params);
      ASSERT_FALSE(result.report.empty());
      const std::string_view det = obs::DeterministicSection(result.report);
      ASSERT_FALSE(det.empty());
      if (reference.empty())
        reference = std::string(det);
      else
        EXPECT_EQ(det, reference);
    }
  }
#if HTP_OBS_ENABLED
  EXPECT_NE(reference.find("\"event\":\"driver.iteration\""),
            std::string::npos);
  EXPECT_NE(reference.find("\"event\":\"flow.round\""), std::string::npos);
#else
  EXPECT_NE(reference.find("\"journal\":[]"), std::string::npos)
      << "compiled-out builds render reports with empty telemetry";
#endif
}

TEST(RunReportPipeline, MultilevelReportCoversTheWholePipeline) {
  const Hypergraph hg = MakeIscas85Like("c1355", 5);
  const HierarchySpec spec = UniformHierarchy(hg.total_size(), 3, 2, 0.10,
                                              std::vector<double>(3, 1.0));
  obs::ResetAll();
  obs::DrainEvents();
  MultilevelParams params;
  params.flow.iterations = 2;
  params.flow.seed = 11;
  params.coarsen_threshold = 64;
  params.collect_report = true;
  const MultilevelResult result = RunMultilevelFlow(hg, spec, params);
  ASSERT_FALSE(result.report.empty());
  const std::string_view det = obs::DeterministicSection(result.report);
  ASSERT_FALSE(det.empty());
  EXPECT_NE(det.find("\"algorithm\":\"multilevel_flow\""),
            std::string_view::npos);
  EXPECT_NE(det.find("\"cost\":"), std::string_view::npos);
#if HTP_OBS_ENABLED
  // The pipeline-wide journal keeps the coarse flow's records (the inner
  // RunHtpFlow must not drain them) plus the per-level records.
  EXPECT_NE(det.find("\"event\":\"driver.iteration\""),
            std::string_view::npos);
  if (result.coarsen_levels > 0)
    EXPECT_NE(det.find("\"event\":\"multilevel.level\""),
              std::string_view::npos);
#endif
}

TEST(RunReportPipeline, ReportIsEmptyUnlessRequested) {
  const Hypergraph hg = MakeIscas85Like("c1355", 3);
  const HierarchySpec spec = UniformHierarchy(hg.total_size(), 3, 2, 0.10,
                                              std::vector<double>(3, 1.0));
  HtpFlowParams params;
  params.iterations = 1;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  EXPECT_TRUE(result.report.empty());
}

}  // namespace
}  // namespace htp
