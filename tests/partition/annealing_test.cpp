#include "partition/annealing.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "partition/random_partition.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(Annealing, ImprovesARandomStartOnFigure2) {
  Hypergraph hg = Figure2Graph();
  // Figure 2's exact capacities admit no single-node move; give the
  // annealer the slack real hierarchies have (same as the FM tests).
  HierarchySpec spec({{5.0, 2, 1.0}, {9.0, 2, 2.0}, {16.0, 2, 1.0}});
  Rng rng(3);
  TreePartition tp = RandomPartition(hg, spec, rng);
  const double before = PartitionCost(tp, spec);
  AnnealingParams params;
  params.seed = 3;
  const AnnealingStats stats = AnnealHtp(tp, spec, params);
  EXPECT_LE(stats.final_cost, before + 1e-9);
  EXPECT_NEAR(stats.final_cost, PartitionCost(tp, spec), 1e-9);
  RequireValidPartition(tp, spec);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(Annealing, NoLeavesMeansNoChange) {
  // A single-leaf (root at level 0) partition has no moves at all.
  HypergraphBuilder builder;
  builder.add_node();
  builder.add_node();
  builder.add_net({0u, 1u});
  Hypergraph hg = builder.build();
  TreePartition tp(hg, 0);
  tp.AssignNode(0, TreePartition::kRoot);
  tp.AssignNode(1, TreePartition::kRoot);
  HierarchySpec spec({{2.0, 2, 1.0}, {2.0, 2, 1.0}});
  const AnnealingStats stats = AnnealHtp(tp, spec);
  EXPECT_DOUBLE_EQ(stats.final_cost, stats.initial_cost);
}

TEST(Annealing, ParameterValidation) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  AnnealingParams params;
  params.cooling = 1.5;
  EXPECT_THROW(AnnealHtp(tp, Figure2Spec(), params), Error);
  params = {};
  params.moves_per_node = 0.0;
  EXPECT_THROW(AnnealHtp(tp, Figure2Spec(), params), Error);
}

class AnnealingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AnnealingPropertyTest, MonotoneValidAndDeterministic) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      30 + seed % 30, 35 + seed % 30, 3, seed);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.3);
  Rng rng(seed);
  TreePartition tp = RandomPartition(hg, spec, rng);
  TreePartition twin = tp;
  const double before = PartitionCost(tp, spec);

  AnnealingParams params;
  params.seed = seed * 5 + 1;
  params.max_sweeps = 40;
  const AnnealingStats a = AnnealHtp(tp, spec, params);
  EXPECT_LE(a.final_cost, before + 1e-9);
  EXPECT_NEAR(a.final_cost, PartitionCost(tp, spec), 1e-9);
  RequireValidPartition(tp, spec);

  const AnnealingStats b = AnnealHtp(twin, spec, params);
  EXPECT_DOUBLE_EQ(a.final_cost, b.final_cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(tp.leaf_of(v), twin.leaf_of(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealingPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace htp
