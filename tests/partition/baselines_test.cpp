#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "partition/gfm.hpp"
#include "partition/random_partition.hpp"
#include "partition/rfm.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(Rfm, SolvesFigure2Reasonably) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  RfmParams params;
  params.seed = 5;
  const TreePartition tp = RunRfm(hg, spec, params);
  RequireValidPartition(tp, spec);
  // FM min-cut carving should find the cluster structure here.
  EXPECT_LE(PartitionCost(tp, spec), 2.0 * kFigure2OptimalCost);
}

TEST(Gfm, SolvesFigure2Reasonably) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  GfmParams params;
  params.seed = 5;
  const TreePartition tp = RunGfm(hg, spec, params);
  RequireValidPartition(tp, spec);
  EXPECT_LE(PartitionCost(tp, spec), 2.0 * kFigure2OptimalCost);
}

TEST(Baselines, BeatRandomOnClusteredCircuit) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(96, 140, 3, 8);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.15);
  Rng rng(17);
  const double random_cost =
      PartitionCost(RandomPartition(hg, spec, rng), spec);
  const double rfm_cost = PartitionCost(RunRfm(hg, spec, {16, 2}), spec);
  const double gfm_cost = PartitionCost(RunGfm(hg, spec, {16, 2}), spec);
  EXPECT_LT(rfm_cost, random_cost);
  EXPECT_LT(gfm_cost, random_cost);
}

TEST(RandomPartition, ValidAndDeterministic) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(64, 70, 4, 5);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.3);
  Rng rng_a(7);
  Rng rng_b(7);
  const TreePartition a = RandomPartition(hg, spec, rng_a);
  const TreePartition b = RandomPartition(hg, spec, rng_b);
  RequireValidPartition(a, spec);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(a.leaf_of(v), b.leaf_of(v));
}

class BaselinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselinePropertyTest, RfmPartitionsAreValid) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      40 + seed % 60, 50 + seed % 60, 2 + seed % 4, seed);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), 2 + seed % 3, 0.2);
  RfmParams params;
  params.seed = seed;
  const TreePartition tp = RunRfm(hg, spec, params);
  RequireValidPartition(tp, spec);
}

TEST_P(BaselinePropertyTest, GfmPartitionsAreValid) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      40 + seed % 60, 50 + seed % 60, 2 + seed % 4, seed ^ 0xbeef);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), 2 + seed % 3, 0.2);
  GfmParams params;
  params.seed = seed;
  const TreePartition tp = RunGfm(hg, spec, params);
  RequireValidPartition(tp, spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace htp
