#include "partition/exhaustive.hpp"

#include <gtest/gtest.h>

#include "partition/htp_fm.hpp"
#include "partition/random_partition.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(Exhaustive, TwoTrianglesBridgeCut) {
  HypergraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({1u, 2u});
  builder.add_net({0u, 2u});
  builder.add_net({3u, 4u});
  builder.add_net({4u, 5u});
  builder.add_net({3u, 5u});
  builder.add_net({2u, 3u});
  Hypergraph hg = builder.build();
  HierarchySpec spec({{3.0, 2, 1.0}, {6.0, 2, 1.0}});
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->cost, 2.0);  // bridge spans 2 blocks at level 0
  RequireValidPartition(exact->best, spec);
  EXPECT_GT(exact->evaluated, 1u);
}

TEST(Exhaustive, RespectsEnumerationCap) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(14, 14, 3, 1);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.3);
  EXPECT_FALSE(ExhaustiveHtp(hg, spec, 10).has_value());
}

TEST(Exhaustive, SingleLeafInstance) {
  HypergraphBuilder builder;
  builder.add_node();
  builder.add_node();
  builder.add_net({0u, 1u});
  Hypergraph hg = builder.build();
  HierarchySpec spec({{2.0, 2, 1.0}, {2.0, 2, 1.0}});
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->cost, 0.0);
}

// Ground-truth property: local search from any start can never beat the
// exhaustive optimum, and the optimum is reachable by the heuristics on
// easy instances.
class ExhaustivePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustivePropertyTest, LowerBoundsLocalSearch) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(9, 8, 3, seed);
  std::vector<LevelSpec> levels(3);
  levels[0] = {3.0, 2, 1.0};
  levels[1] = {6.0, 2, 1.5};
  levels[2] = {9.0, 2, 1.0};
  const HierarchySpec spec{std::move(levels)};
  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value());
  Rng rng(seed * 3 + 1);
  TreePartition tp = RandomPartition(hg, spec, rng);
  const HtpFmStats stats = RefineHtpFm(tp, spec);
  EXPECT_GE(stats.final_cost, exact->cost - 1e-9)
      << "local search reported a cost below the certified optimum";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustivePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace htp
