#include "partition/fm_bipartition.hpp"

#include <gtest/gtest.h>

#include "graph/maxflow.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

Hypergraph TwoClusters(std::size_t cluster, double bridge_cap = 1.0) {
  HypergraphBuilder builder;
  for (std::size_t i = 0; i < 2 * cluster; ++i) builder.add_node();
  for (std::size_t base : {std::size_t{0}, cluster})
    for (std::size_t i = 0; i < cluster; ++i)
      for (std::size_t j = i + 1; j < cluster; ++j)
        builder.add_net({static_cast<NodeId>(base + i),
                         static_cast<NodeId>(base + j)});
  builder.add_net({0u, static_cast<NodeId>(cluster)}, bridge_cap, "bridge");
  return builder.build();
}

TEST(EvaluateBipartition, CountsCutNets) {
  Hypergraph hg = TwoClusters(3);
  std::vector<char> side(6, 0);
  side[3] = side[4] = side[5] = 1;
  const Bipartition part = EvaluateBipartition(hg, side);
  EXPECT_DOUBLE_EQ(part.cut, 1.0);  // only the bridge
  EXPECT_DOUBLE_EQ(part.size0, 3.0);
}

TEST(FmRefine, RepairsAScrambledSplit) {
  Hypergraph hg = TwoClusters(5);
  // Scrambled: one node from each cluster swapped.
  std::vector<char> side(10, 0);
  for (int i = 5; i < 10; ++i) side[i] = 1;
  std::swap(side[0], side[5]);
  Bipartition initial;
  initial.side = side;
  FmBipartitionParams params;
  params.min_size0 = 5.0;
  params.max_size0 = 5.0;
  const Bipartition refined = FmRefineBipartition(hg, initial, params);
  EXPECT_DOUBLE_EQ(refined.cut, 1.0);  // back to the bridge-only cut
  EXPECT_DOUBLE_EQ(refined.size0, 5.0);
}

TEST(FmRefine, NeverWorsensTheCut) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(36, 50, 4, seed);
    Rng rng(seed * 5);
    std::vector<char> side(hg.num_nodes());
    double size0 = 0.0;
    for (NodeId v = 0; v < hg.num_nodes(); ++v) {
      side[v] = rng.next_bool(0.5) ? 1 : 0;
      if (!side[v]) size0 += 1.0;
    }
    const Bipartition before = EvaluateBipartition(hg, side);
    FmBipartitionParams params;
    params.min_size0 = 1.0;
    params.max_size0 = hg.total_size() - 1.0;
    if (size0 < 1.0 || size0 > params.max_size0) continue;
    const Bipartition after = FmRefineBipartition(hg, before, params);
    EXPECT_LE(after.cut, before.cut + 1e-9);
    EXPECT_GE(after.size0, params.min_size0 - 1e-9);
    EXPECT_LE(after.size0, params.max_size0 + 1e-9);
    // Reported cut must match a recomputation.
    EXPECT_NEAR(after.cut, EvaluateBipartition(hg, after.side).cut, 1e-9);
  }
}

TEST(FmRefine, RejectsWindowViolatingStart) {
  Hypergraph hg = TwoClusters(3);
  Bipartition initial;
  initial.side.assign(6, 0);  // everything on side 0
  FmBipartitionParams params;
  params.min_size0 = 2.0;
  params.max_size0 = 4.0;
  EXPECT_THROW(FmRefineBipartition(hg, initial, params), Error);
}

TEST(FmBipartition, FindsBridgeCut) {
  Hypergraph hg = TwoClusters(6);
  FmBipartitionParams params;
  params.min_size0 = 6.0;
  params.max_size0 = 6.0;
  Rng rng(3);
  const Bipartition part = FmBipartition(hg, params, rng);
  EXPECT_DOUBLE_EQ(part.cut, 1.0);
  EXPECT_DOUBLE_EQ(part.size0, 6.0);
}

TEST(FmBipartition, MatchesMaxFlowOnFixedTerminals) {
  // On a two-cluster instance with an unbalanced window, FM should reach
  // the min-cut value that the max-flow oracle certifies.
  Hypergraph hg = TwoClusters(8, 2.0);
  const std::vector<NodeId> src{0};
  const std::vector<NodeId> snk{8};
  const HyperMinCut oracle = HypergraphMinCut(hg, src, snk);
  FmBipartitionParams params;
  params.min_size0 = 4.0;
  params.max_size0 = 12.0;
  Rng rng(4);
  const Bipartition part = FmBipartition(hg, params, rng);
  EXPECT_LE(part.cut, oracle.cut_value + 1e-9);
}

TEST(FmBipartition, HypergraphGainsHandleMultiPinNets) {
  // Net {0,1,2} with 0,1 on side 0: moving 2 to side 0 uncuts it.
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u});
  builder.add_net({2u, 3u});
  Hypergraph hg = builder.build();
  std::vector<char> side{0, 0, 1, 1};
  Bipartition initial;
  initial.side = side;
  FmBipartitionParams params;
  params.min_size0 = 1.0;
  params.max_size0 = 3.0;
  const Bipartition refined = FmRefineBipartition(hg, initial, params);
  // Optimal within the window: {0,1,2} | {3} cutting only {2,3}.
  EXPECT_DOUBLE_EQ(refined.cut, 1.0);
}

class FmWindowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmWindowPropertyTest, ConstructedSplitsRespectWindows) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 30, 25 + seed % 25, 2 + seed % 4, seed);
  const double total = hg.total_size();
  FmBipartitionParams params;
  params.min_size0 = total * 0.3;
  params.max_size0 = total * 0.6;
  Rng rng(seed);
  const Bipartition part = FmBipartition(hg, params, rng);
  EXPECT_GE(part.size0, params.min_size0 - 1e-9);
  EXPECT_LE(part.size0, params.max_size0 + 1e-9);
  EXPECT_NEAR(part.cut, EvaluateBipartition(hg, part.side).cut, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmWindowPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace htp
