#include "partition/htp_fm.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "partition/random_partition.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(HtpFm, FixesASingleMisplacedNode) {
  Hypergraph hg = Figure2Graph();
  // Figure 2's exact capacities (C0 = 4 with 4-node leaves) leave no
  // headroom for single-node moves; refinement needs the slack real
  // hierarchies have. One spare slot per block suffices for the swap.
  HierarchySpec spec({{5.0, 2, 1.0}, {9.0, 2, 2.0}, {16.0, 2, 1.0}});
  TreePartition tp = Figure2OptimalPartition(hg);
  // Swap nodes 0 and 15 across the hierarchy: strictly worse than optimal.
  const BlockId leaf_a = tp.leaf_of(0);
  const BlockId leaf_d = tp.leaf_of(15);
  tp.MoveNode(0, leaf_d);
  tp.MoveNode(15, leaf_a);
  const double scrambled = PartitionCost(tp, spec);
  ASSERT_GT(scrambled, kFigure2OptimalCost);

  const HtpFmStats stats = RefineHtpFm(tp, spec);
  RequireValidPartition(tp, spec);
  EXPECT_DOUBLE_EQ(stats.initial_cost, scrambled);
  EXPECT_DOUBLE_EQ(stats.final_cost, kFigure2OptimalCost);
  EXPECT_DOUBLE_EQ(PartitionCost(tp, spec), kFigure2OptimalCost);
}

TEST(HtpFm, ReportedCostsMatchReality) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(50, 70, 4, 31);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.25);
  Rng rng(31);
  TreePartition tp = RandomPartition(hg, spec, rng);
  const double before = PartitionCost(tp, spec);
  const HtpFmStats stats = RefineHtpFm(tp, spec);
  EXPECT_DOUBLE_EQ(stats.initial_cost, before);
  EXPECT_NEAR(stats.final_cost, PartitionCost(tp, spec), 1e-6);
}

TEST(HtpFm, EarlyStopWindowStillImproves) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(60, 90, 3, 13);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.25);
  Rng rng(13);
  TreePartition tp = RandomPartition(hg, spec, rng);
  const double before = PartitionCost(tp, spec);
  HtpFmParams params;
  params.early_stop_window = 10;
  const HtpFmStats stats = RefineHtpFm(tp, spec, params);
  EXPECT_LE(stats.final_cost, before + 1e-9);
  RequireValidPartition(tp, spec);
}

TEST(HtpFm, RequiresCompletePartition) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp(hg, 2);
  EXPECT_THROW(RefineHtpFm(tp, Figure2Spec()), Error);
}

// The paper's Table 3 property: FM improvement never makes a constructive
// solution worse, and preserves validity, for all three kinds of initial
// partitions and across random instances.
class HtpFmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HtpFmPropertyTest, NeverWorsensAndStaysValid) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      30 + seed % 50, 40 + seed % 50, 2 + seed % 4, seed);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), 2 + seed % 3, 0.25);
  Rng rng(seed ^ 0x1234);
  TreePartition tp = RandomPartition(hg, spec, rng);
  const double before = PartitionCost(tp, spec);
  const HtpFmStats stats = RefineHtpFm(tp, spec);
  RequireValidPartition(tp, spec);
  EXPECT_LE(stats.final_cost, before + 1e-9);
  EXPECT_NEAR(stats.final_cost, PartitionCost(tp, spec), 1e-6);
  EXPECT_GE(stats.passes, 1u);
}

TEST_P(HtpFmPropertyTest, IdempotentAtConvergence) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(25, 35, 3, seed * 11);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.3);
  Rng rng(seed);
  TreePartition tp = RandomPartition(hg, spec, rng);
  (void)RefineHtpFm(tp, spec);
  const double converged = PartitionCost(tp, spec);
  const HtpFmStats again = RefineHtpFm(tp, spec);
  EXPECT_NEAR(again.final_cost, converged, 1e-9);
  EXPECT_EQ(again.moves_kept, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtpFmPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace htp
