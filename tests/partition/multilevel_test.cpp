#include "partition/multilevel.hpp"

#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(Multilevel, FindsTheBridgeOnTwoClusters) {
  HypergraphBuilder builder;
  for (int i = 0; i < 24; ++i) builder.add_node();
  for (NodeId base : {0u, 12u})
    for (NodeId i = 0; i < 12; ++i)
      builder.add_net({base + i, base + (i + 1) % 12});
  for (NodeId base : {0u, 12u})
    for (NodeId i = 0; i < 12; i += 2)
      builder.add_net({base + i, base + (i + 5) % 12});
  builder.add_net({5u, 17u}, 1.0, "bridge");
  Hypergraph hg = builder.build();

  FmBipartitionParams window;
  window.min_size0 = 12.0;
  window.max_size0 = 12.0;
  Rng rng(3);
  MultilevelParams params;
  params.coarsest_nodes = 6;
  const Bipartition part = MultilevelBipartition(hg, window, rng, params);
  EXPECT_DOUBLE_EQ(part.cut, 1.0);
  EXPECT_DOUBLE_EQ(part.size0, 12.0);
}

TEST(Multilevel, WindowAlwaysRespected) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(
        60 + seed % 60, 80 + seed % 60, 2 + seed % 4, seed);
    FmBipartitionParams window;
    window.min_size0 = hg.total_size() * 0.4;
    window.max_size0 = hg.total_size() * 0.6;
    Rng rng(seed);
    MultilevelParams params;
    params.coarsest_nodes = 20;
    const Bipartition part = MultilevelBipartition(hg, window, rng, params);
    EXPECT_GE(part.size0, window.min_size0 - 1e-9);
    EXPECT_LE(part.size0, window.max_size0 + 1e-9);
    EXPECT_NEAR(part.cut, EvaluateBipartition(hg, part.side).cut, 1e-9);
  }
}

TEST(Multilevel, AtLeastAsGoodAsFlatFmOnClusteredCircuits) {
  // On Rent-style circuits the V-cycle should usually match or beat one
  // flat FM run; assert over the sum of several seeds so single-seed noise
  // cannot flip the comparison.
  double flat_total = 0.0, ml_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RentCircuitParams circ;
    circ.num_gates = 400;
    circ.num_primary_inputs = 30;
    circ.seed = seed;
    Hypergraph hg = RentCircuit(circ);
    FmBipartitionParams window;
    window.min_size0 = hg.total_size() * 0.45;
    window.max_size0 = hg.total_size() * 0.55;
    Rng rng_flat(seed), rng_ml(seed);
    flat_total += FmBipartition(hg, window, rng_flat).cut;
    ml_total += MultilevelBipartition(hg, window, rng_ml).cut;
  }
  EXPECT_LE(ml_total, flat_total * 1.05);
}

TEST(RunMlfm, ProducesValidPartitions) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(
        80 + seed * 10, 100, 3, seed * 13);
    const HierarchySpec spec =
        FullBinaryHierarchy(hg.total_size(), 3, 0.2);
    MlfmParams params;
    params.seed = seed;
    const TreePartition tp = RunMlfm(hg, spec, params);
    RequireValidPartition(tp, spec);
  }
}

TEST(RunMlfm, DeterministicForSeed) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(70, 90, 3, 4);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  MlfmParams params;
  params.seed = 11;
  const TreePartition a = RunMlfm(hg, spec, params);
  const TreePartition b = RunMlfm(hg, spec, params);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(a.leaf_of(v), b.leaf_of(v));
}

}  // namespace
}  // namespace htp
