// RefineHtpFmBlocks: per-block parallel FM. The load-bearing claims:
// never worse than the input and still valid, stats consistent with the
// real partition cost, bit-identical for every worker count (the algorithm
// is fixed, only the schedule varies), and exact fallback to RefineHtpFm on
// degenerate shapes.
#include "partition/parallel_refine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost.hpp"
#include "core/htp_flow.hpp"
#include "netlist/generators.hpp"
#include "partition/rfm.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

std::vector<BlockId> LeafVector(const TreePartition& tp) {
  std::vector<BlockId> leaves(tp.hypergraph().num_nodes());
  for (NodeId v = 0; v < tp.hypergraph().num_nodes(); ++v)
    leaves[v] = tp.leaf_of(v);
  return leaves;
}

// A deliberately unrefined starting point with room for improvement.
TreePartition RfmStart(const Hypergraph& hg, const HierarchySpec& spec,
                       std::uint64_t seed) {
  RfmParams params;
  params.seed = seed;
  params.fm_passes = 1;
  return RunRfm(hg, spec, params);
}

TEST(ParallelRefine, NeverWorseAndValid) {
  const Hypergraph hg = MakeIscas85Like("c1355", 13);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  TreePartition tp = RfmStart(hg, spec, 13);
  const double before = PartitionCost(tp, spec);

  const HtpFmStats stats = RefineHtpFmBlocks(tp, spec, {}, 4);
  RequireValidPartition(tp, spec);
  EXPECT_DOUBLE_EQ(stats.initial_cost, before);
  EXPECT_LE(stats.final_cost, before);
  // The stats must describe the real partition, not a block-local view.
  EXPECT_DOUBLE_EQ(stats.final_cost, PartitionCost(tp, spec));
  EXPECT_TRUE(stats.completed);
}

TEST(ParallelRefine, BitIdenticalForEveryWorkerCount) {
  const Hypergraph hg = MakeIscas85Like("c2670", 3);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  TreePartition reference = RfmStart(hg, spec, 3);
  const HtpFmStats ref_stats = RefineHtpFmBlocks(reference, spec, {}, 2);

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{8}, std::size_t{0}}) {
    TreePartition tp = RfmStart(hg, spec, 3);
    const HtpFmStats stats = RefineHtpFmBlocks(tp, spec, {}, workers);
    EXPECT_EQ(LeafVector(tp), LeafVector(reference))
        << "build_threads=" << workers;
    EXPECT_DOUBLE_EQ(stats.final_cost, ref_stats.final_cost);
    EXPECT_EQ(stats.passes, ref_stats.passes);
    EXPECT_EQ(stats.moves_kept, ref_stats.moves_kept);
  }
}

TEST(ParallelRefine, DegenerateShapeFallsBackToPlainRefiner) {
  // Two-level hierarchy: root children ARE the leaves (root_level < 2), so
  // block-local refinement has no subtree to recurse into — the function
  // must behave exactly like RefineHtpFm.
  const Hypergraph hg = testutil::RandomConnectedHypergraph(24, 16, 3, 21);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 1);
  TreePartition plain = RfmStart(hg, spec, 21);
  TreePartition blocks = RfmStart(hg, spec, 21);
  ASSERT_EQ(LeafVector(plain), LeafVector(blocks));

  const HtpFmStats plain_stats = RefineHtpFm(plain, spec, {});
  const HtpFmStats block_stats = RefineHtpFmBlocks(blocks, spec, {}, 8);
  EXPECT_EQ(LeafVector(plain), LeafVector(blocks));
  EXPECT_DOUBLE_EQ(plain_stats.final_cost, block_stats.final_cost);
  EXPECT_EQ(plain_stats.passes, block_stats.passes);
  EXPECT_EQ(plain_stats.moves_kept, block_stats.moves_kept);
}

TEST(ParallelRefine, ImprovesAcrossBlocksViaGlobalCleanupPass) {
  // The block-local phase cannot move nodes between root children; the
  // trailing global boundary pass can. Assert the whole thing still ends
  // no worse than plain FM's first pass would leave it — i.e. the
  // composition is a genuine refiner, not a no-op.
  const Hypergraph hg = MakeIscas85Like("c1355", 29);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  TreePartition tp = RfmStart(hg, spec, 29);
  const double before = PartitionCost(tp, spec);
  const HtpFmStats stats = RefineHtpFmBlocks(tp, spec, {}, 2);
  EXPECT_LE(stats.final_cost, before);
  RequireValidPartition(tp, spec);
}

}  // namespace
}  // namespace htp
