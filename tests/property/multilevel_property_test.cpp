// Property suite for the multilevel pipeline: 50 deterministic seeds sweep
// instance size, coarsening scheme, hierarchy shape, and threshold; every
// partition is checked against a from-scratch Equation-(1) recomputation
// (independent of PartitionCost) plus the library's validator.
#include <gtest/gtest.h>

#include <set>

#include "core/cost.hpp"
#include "multilevel/multilevel_flow.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

Hypergraph MultilevelPropertyCircuit(std::uint64_t seed) {
  const NodeId n = static_cast<NodeId>(150 + (seed * 13) % 250);
  return testutil::RandomConnectedHypergraph(n, /*extra_nets=*/n / 2,
                                             /*max_degree=*/5,
                                             seed * 1000003 + 17);
}

double RecomputeCost(const TreePartition& tp, const HierarchySpec& spec) {
  const Hypergraph& hg = tp.hypergraph();
  double total = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    for (Level l = 0; l < tp.root_level(); ++l) {
      std::set<BlockId> blocks;
      for (NodeId v : hg.pins(e)) blocks.insert(tp.block_at(v, l));
      if (blocks.size() > 1)
        total += spec.weight(l) * static_cast<double>(blocks.size()) *
                 hg.net_capacity(e);
    }
  }
  return total;
}

class MultilevelPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultilevelPropertyTest, MultilevelPartitionSatisfiesInvariants) {
  const std::uint64_t seed = GetParam();
  const Hypergraph hg = MultilevelPropertyCircuit(seed);
  const Level height = 2 + static_cast<Level>(seed % 2);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), height, 0.4 + 0.2 * (seed % 2));

  MultilevelParams params;
  params.flow.iterations = 1;
  params.flow.seed = seed * 31 + 1;
  params.coarsen_threshold = static_cast<NodeId>(40 + seed % 40);
  params.coarsen.scheme = (seed % 3) == 0 ? CoarsenScheme::kHeavyEdgeMatching
                                          : CoarsenScheme::kLabelPropagation;
  const MultilevelResult result = RunMultilevelFlow(hg, spec, params);

  RequireValidPartition(result.partition, spec);
  EXPECT_TRUE(result.completed);
  EXPECT_NEAR(result.cost, RecomputeCost(result.partition, spec), 1e-9);
  EXPECT_NEAR(result.cost, PartitionCost(result.partition, spec), 1e-9);
  // Refinement at each level never worsens the projected cost, so the final
  // cost is bounded by the coarse-level cost (projection being cost-exact).
  EXPECT_LE(result.cost, result.coarse_cost + 1e-9);

  if (seed % 5 == 0) {
    // Determinism as a property: a rerun is bit-identical.
    const MultilevelResult again = RunMultilevelFlow(hg, spec, params);
    EXPECT_DOUBLE_EQ(result.cost, again.cost);
    EXPECT_EQ(result.coarsen_levels, again.coarsen_levels);
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      ASSERT_EQ(result.partition.leaf_of(v), again.partition.leaf_of(v))
          << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultilevelPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace htp
