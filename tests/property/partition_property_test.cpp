// Property suite: partition invariants after RunHtpFlow on randomized
// instances. Every check here is recomputed from first principles in this
// file — the suite deliberately avoids ValidatePartition / PartitionCost so
// that a bug shared between the library's checker and its construction code
// cannot hide. 200+ deterministic seeds sweep instance size, node weights,
// hierarchy shape, carver, and metric scope.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cost.hpp"
#include "core/htp_flow.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// Random circuit: unit sizes on even seeds, sizes in {1..3} on odd seeds
// (weighted instances need generous capacity slack — see the integration
// weighted tests).
Hypergraph PropertyCircuit(std::uint64_t seed) {
  const NodeId n = static_cast<NodeId>(18 + seed % 41);
  const bool weighted = (seed % 2) == 1;
  Rng rng(seed * 1000003 + 7);
  HypergraphBuilder builder;
  for (NodeId v = 0; v < n; ++v)
    builder.add_node(weighted ? 1.0 + static_cast<double>(rng.next_below(3))
                              : 1.0);
  for (NodeId v = 1; v < n; ++v)
    builder.add_net({static_cast<NodeId>(rng.next_below(v)), v},
                    0.5 + rng.next_double());
  const std::size_t extra = 10 + seed % 30;
  for (std::size_t i = 0; i < extra; ++i) {
    std::vector<NodeId> pins;
    const std::size_t deg = 2 + rng.next_below(4);
    for (std::size_t k = 0; k < deg; ++k)
      pins.push_back(static_cast<NodeId>(rng.next_below(n)));
    builder.add_net(pins);
  }
  return builder.build();
}

HierarchySpec PropertySpec(const Hypergraph& hg, std::uint64_t seed) {
  const Level height = 2 + static_cast<Level>(seed % 2);
  const double slack = (seed % 2) == 1 ? 0.5 : 0.25;
  return FullBinaryHierarchy(hg.total_size(), height, slack);
}

// Independent Equation-(1) recomputation: distinct level-l blocks touched
// by each net, counted as span 0 when the net stays inside one block.
double RecomputeCost(const TreePartition& tp, const HierarchySpec& spec) {
  const Hypergraph& hg = tp.hypergraph();
  double total = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    for (Level l = 0; l < tp.root_level(); ++l) {
      std::set<BlockId> blocks;
      for (NodeId v : hg.pins(e)) blocks.insert(tp.block_at(v, l));
      if (blocks.size() > 1)
        total += spec.weight(l) * static_cast<double>(blocks.size()) *
                 hg.net_capacity(e);
    }
  }
  return total;
}

class PartitionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionPropertyTest, FlowPartitionSatisfiesAllInvariants) {
  const std::uint64_t seed = GetParam();
  const Hypergraph hg = PropertyCircuit(seed);
  const HierarchySpec spec = PropertySpec(hg, seed);

  HtpFlowParams params;
  params.iterations = 1 + seed % 2;
  params.carver = (seed % 3) == 0 ? CarverKind::kMstSplit
                                  : CarverKind::kPrimPrefix;
  params.metric_scope = (seed % 5) == 0 ? MetricScope::kGlobalOnce
                                        : MetricScope::kPerSubproblem;
  params.seed = seed * 31 + 1;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  const TreePartition& tp = result.partition;

  // --- Structure: a proper tree with the root at the spec's top level and
  // every child exactly one level below its parent.
  ASSERT_EQ(tp.root_level(), spec.root_level());
  ASSERT_GE(tp.num_blocks(), 1u);
  EXPECT_EQ(tp.parent(TreePartition::kRoot), kInvalidBlock);
  for (BlockId q = 1; q < tp.num_blocks(); ++q) {
    const BlockId p = tp.parent(q);
    ASSERT_NE(p, kInvalidBlock) << "block " << q;
    ASSERT_EQ(tp.level(q) + 1, tp.level(p)) << "block " << q;
    const auto kids = tp.children(p);
    EXPECT_NE(std::find(kids.begin(), kids.end(), q), kids.end())
        << "block " << q << " missing from parent's child list";
  }

  // --- Exhaustive: every node sits in exactly one level-0 leaf, and every
  // level's blocks partition V (disjointness is per-node: block_at is a
  // function, so it suffices that each node maps into a real block whose
  // recomputed contents are consistent).
  ASSERT_TRUE(tp.fully_assigned());
  std::map<BlockId, double> recomputed_size;  // over ALL blocks, all levels
  double assigned_total = 0.0;
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    const BlockId leaf = tp.leaf_of(v);
    ASSERT_NE(leaf, kInvalidBlock) << "node " << v;
    ASSERT_EQ(tp.level(leaf), 0u) << "node " << v;
    assigned_total += hg.node_size(v);
    // The root-path of v: block_at must walk leaf -> root through the
    // parent links, one block per level.
    BlockId expect = leaf;
    for (Level l = 0; l <= tp.root_level(); ++l) {
      const BlockId q = tp.block_at(v, l);
      ASSERT_EQ(q, expect) << "node " << v << " level " << l;
      recomputed_size[q] += hg.node_size(v);
      expect = tp.parent(q);
    }
  }
  EXPECT_DOUBLE_EQ(assigned_total, hg.total_size());
  EXPECT_EQ(recomputed_size.count(TreePartition::kRoot), 1u);
  EXPECT_DOUBLE_EQ(recomputed_size[TreePartition::kRoot], hg.total_size());

  // --- Size bookkeeping and capacity bounds C_l, from the independent
  // per-block sums (empty chain blocks legitimately recompute to 0).
  for (BlockId q = 0; q < tp.num_blocks(); ++q) {
    const auto it = recomputed_size.find(q);
    const double size = it == recomputed_size.end() ? 0.0 : it->second;
    EXPECT_NEAR(tp.block_size(q), size, 1e-9) << "block " << q;
    EXPECT_LE(size, spec.capacity(tp.level(q)) + 1e-9) << "block " << q;
  }

  // --- Branch bounds K_l above level 0.
  for (BlockId q = 0; q < tp.num_blocks(); ++q) {
    if (tp.level(q) > 0) {
      EXPECT_LE(tp.children(q).size(), spec.max_branches(tp.level(q)))
          << "block " << q;
    }
  }

  // --- Reported cost: equals the from-scratch Equation-(1) recomputation,
  // the library's own scorer, and the best per-iteration construction.
  const double recomputed = RecomputeCost(tp, spec);
  EXPECT_NEAR(result.cost, recomputed, 1e-9);
  EXPECT_NEAR(result.cost, PartitionCost(tp, spec), 1e-9);
  ASSERT_FALSE(result.iterations.empty());
  ASSERT_TRUE(result.completed);
  double best = result.iterations.front().best_partition_cost;
  for (const HtpFlowIteration& it : result.iterations)
    best = std::min(best, it.best_partition_cost);
  EXPECT_NEAR(result.cost, best, 1e-9);
}

TEST_P(PartitionPropertyTest, RerunIsBitIdentical) {
  // Determinism as a property: the same seed must reproduce the identical
  // partition and cost on a second run (fresh scanner, fresh CSR lowering,
  // fresh RNG streams).
  const std::uint64_t seed = GetParam();
  if (seed % 4 != 0) GTEST_SKIP() << "sampled at 1-in-4 to bound runtime";
  const Hypergraph hg = PropertyCircuit(seed);
  const HierarchySpec spec = PropertySpec(hg, seed);
  HtpFlowParams params;
  params.iterations = 2;
  params.seed = seed + 5;
  const HtpFlowResult a = RunHtpFlow(hg, spec, params);
  const HtpFlowResult b = RunHtpFlow(hg, spec, params);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(a.partition.leaf_of(v), b.partition.leaf_of(v)) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 200));

}  // namespace
}  // namespace htp
