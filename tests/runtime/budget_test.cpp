// Unit coverage of the cooperative-cancellation primitives: inert default
// tokens, manual firing, deadline latching, parent propagation, budget
// arming, and the stop-reason names the CLI prints.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/budget.hpp"

namespace htp {
namespace {

TEST(Budget, DefaultIsUnlimited) {
  const Budget budget;
  EXPECT_FALSE(budget.HasDeadline());
  EXPECT_TRUE(budget.Unlimited());
}

TEST(Budget, AnyKnobMakesItLimited) {
  Budget deadline;
  deadline.time_budget_seconds = 5.0;
  EXPECT_TRUE(deadline.HasDeadline());
  EXPECT_FALSE(deadline.Unlimited());

  Budget rounds;
  rounds.max_rounds = 10;
  EXPECT_FALSE(rounds.HasDeadline());
  EXPECT_FALSE(rounds.Unlimited());

  Budget iterations;
  iterations.max_iterations = 2;
  EXPECT_FALSE(iterations.Unlimited());
}

TEST(CancellationToken, DefaultTokenIsInertForever) {
  const CancellationToken token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_EQ(token.FiredReason(), StopReason::kCompleted);
  EXPECT_EQ(token.RemainingSeconds(),
            std::numeric_limits<double>::infinity());
  token.Cancel();  // no state: a no-op, not a crash
  EXPECT_FALSE(token.Cancelled());
}

TEST(CancellationToken, ManualTokenFiresOnCancel) {
  const CancellationToken token = CancellationToken::Manual();
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.FiredReason(), StopReason::kCancelled);
  token.Cancel();  // idempotent
  EXPECT_EQ(token.FiredReason(), StopReason::kCancelled);
}

TEST(CancellationToken, CopiesShareState) {
  const CancellationToken token = CancellationToken::Manual();
  const CancellationToken copy = token;
  token.Cancel();
  EXPECT_TRUE(copy.Cancelled());
}

TEST(CancellationToken, ZeroDeadlineIsAlreadyExpired) {
  const CancellationToken token = CancellationToken::WithDeadline(0.0);
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.FiredReason(), StopReason::kDeadline);
  EXPECT_EQ(token.RemainingSeconds(), 0.0);
}

TEST(CancellationToken, NegativeDeadlineBehavesLikeZero) {
  const CancellationToken token = CancellationToken::WithDeadline(-3.0);
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.FiredReason(), StopReason::kDeadline);
}

TEST(CancellationToken, HugeDeadlineDoesNotFire) {
  const CancellationToken token = CancellationToken::WithDeadline(1e18);
  EXPECT_FALSE(token.Cancelled());
  EXPECT_GT(token.RemainingSeconds(), 1e6);
}

TEST(CancellationToken, DeadlineFiresAndLatches) {
  const CancellationToken token = CancellationToken::WithDeadline(0.01);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!token.Cancelled() && std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(token.Cancelled());
  EXPECT_EQ(token.FiredReason(), StopReason::kDeadline);
  EXPECT_EQ(token.RemainingSeconds(), 0.0);
}

TEST(CancellationToken, ParentCancellationPropagates) {
  const CancellationToken parent = CancellationToken::Manual();
  const CancellationToken child =
      CancellationToken::WithDeadline(1e6, parent);
  EXPECT_FALSE(child.Cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.Cancelled());
  EXPECT_EQ(child.FiredReason(), StopReason::kCancelled);
}

TEST(CancellationToken, ChildDeadlineDoesNotFireParent) {
  const CancellationToken parent = CancellationToken::Manual();
  const CancellationToken child = CancellationToken::WithDeadline(0.0, parent);
  EXPECT_TRUE(child.Cancelled());
  EXPECT_FALSE(parent.Cancelled());
}

TEST(StartBudget, NoDeadlineReturnsParentUnchanged) {
  Budget rounds_only;
  rounds_only.max_rounds = 7;
  const CancellationToken inert = StartBudget(rounds_only);
  EXPECT_FALSE(inert.Cancelled());
  inert.Cancel();  // still the inert default token
  EXPECT_FALSE(inert.Cancelled());

  const CancellationToken parent = CancellationToken::Manual();
  const CancellationToken linked = StartBudget(rounds_only, parent);
  parent.Cancel();
  EXPECT_TRUE(linked.Cancelled());
}

TEST(StartBudget, DeadlineBudgetArmsAToken) {
  Budget budget;
  budget.time_budget_seconds = 0.0;
  const CancellationToken token = StartBudget(budget);
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.FiredReason(), StopReason::kDeadline);
}

TEST(StopReason, NamesMatchTheCliContract) {
  EXPECT_STREQ(StopReasonName(StopReason::kCompleted), "completed");
  EXPECT_STREQ(StopReasonName(StopReason::kIterationCap), "iteration-cap");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
}

}  // namespace
}  // namespace htp
