// Unit coverage of the disjoint-subtree task engine: every spawned task
// runs exactly once, slot trees are identical for every worker count,
// exception propagation picks the lexicographically smallest failing path,
// and nested use inside a pool worker degrades to a serial drain.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/subtree_tasks.hpp"
#include "runtime/thread_pool.hpp"

namespace htp {
namespace {

// A slot tree obeying the engine's contract: parents allocate children
// before spawning. Each slot records the path the filling task saw.
struct Slot {
  TaskPath path;
  std::vector<std::unique_ptr<Slot>> children;
};

// Spawns a fixed fanout tree of the given depth and records every path.
void FillTree(SubtreeTasks::Context& ctx, Slot& slot, std::size_t depth,
              std::size_t fanout, std::atomic<std::size_t>& runs) {
  runs.fetch_add(1, std::memory_order_relaxed);
  slot.path = ctx.path();
  if (depth == 0) return;
  for (std::size_t k = 0; k < fanout; ++k) {
    slot.children.push_back(std::make_unique<Slot>());
    Slot* child = slot.children.back().get();
    ctx.Spawn([child, depth, fanout, &runs](SubtreeTasks::Context& cctx) {
      FillTree(cctx, *child, depth - 1, fanout, runs);
    });
  }
}

void ExpectSameTree(const Slot& a, const Slot& b) {
  EXPECT_EQ(a.path, b.path);
  ASSERT_EQ(a.children.size(), b.children.size());
  for (std::size_t i = 0; i < a.children.size(); ++i)
    ExpectSameTree(*a.children[i], *b.children[i]);
}

TEST(SubtreeTasks, RunsEveryTaskExactlyOnce) {
  std::atomic<std::size_t> runs{0};
  Slot root;
  SubtreeTasks::Run(4, [&](SubtreeTasks::Context& ctx) {
    FillTree(ctx, root, 3, 2, runs);
  });
  // Full binary spawn tree of depth 3: 1 + 2 + 4 + 8 tasks.
  EXPECT_EQ(runs.load(), 15u);
  EXPECT_EQ(root.path, TaskPath{});
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[1]->path, (TaskPath{1}));
  EXPECT_EQ(root.children[1]->children[0]->path, (TaskPath{1, 0}));
}

TEST(SubtreeTasks, SlotTreeIsIdenticalForEveryWorkerCount) {
  std::vector<std::unique_ptr<Slot>> trees;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{0}}) {
    std::atomic<std::size_t> runs{0};
    trees.push_back(std::make_unique<Slot>());
    Slot* root = trees.back().get();
    SubtreeTasks::Run(workers, [&, root](SubtreeTasks::Context& ctx) {
      FillTree(ctx, *root, 4, 3, runs);
    });
    EXPECT_EQ(runs.load(), 121u);  // 1 + 3 + 9 + 27 + 81
  }
  for (std::size_t i = 1; i < trees.size(); ++i)
    ExpectSameTree(*trees[0], *trees[i]);
}

TEST(SubtreeTasks, RethrowsLexicographicallySmallestFailingPath) {
  // Children 1..3 of the root throw immediately; child 0 succeeds but its
  // grandchild [0, 0] throws. [0, 0] < [1] < [2] < [3] lexicographically,
  // so the grandchild's exception must win regardless of schedule.
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    std::atomic<std::size_t> runs{0};
    auto root_fn = [&](SubtreeTasks::Context& ctx) {
      ctx.Spawn([&runs](SubtreeTasks::Context& cctx) {
        cctx.Spawn([&runs](SubtreeTasks::Context&) {
          runs.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("path [0,0]");
        });
      });
      for (int k = 1; k <= 3; ++k) {
        ctx.Spawn([k, &runs](SubtreeTasks::Context&) {
          runs.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("path [" + std::to_string(k) + "]");
        });
      }
    };
    try {
      SubtreeTasks::Run(workers, root_fn);
      FAIL() << "expected the engine to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "path [0,0]") << "workers=" << workers;
    }
    // Every task ran to completion even though siblings threw.
    EXPECT_EQ(runs.load(), 4u);
  }
}

TEST(SubtreeTasks, NestedRunInsidePoolWorkerDrainsSerially) {
  // An engine started from inside a ParallelFor worker must not stack a
  // second pool (the nested-parallelism guard): the whole inner task tree
  // drains on the calling thread.
  ThreadPool pool(3);
  std::vector<int> inner_runs(3, 0);
  std::vector<char> single_threaded(3, 0);
  ParallelFor(pool, 3, [&](std::size_t i) {
    const std::thread::id outer = std::this_thread::get_id();
    std::atomic<bool> off_thread{false};
    Slot root;
    std::atomic<std::size_t> runs{0};
    SubtreeTasks::Run(8, [&](SubtreeTasks::Context& ctx) {
      if (std::this_thread::get_id() != outer) off_thread = true;
      FillTree(ctx, root, 2, 2, runs);
    });
    inner_runs[i] = static_cast<int>(runs.load());
    single_threaded[i] = off_thread ? 0 : 1;
  });
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(inner_runs[i], 7);  // 1 + 2 + 4, all ran
    EXPECT_EQ(single_threaded[i], 1) << "inner task escaped to another thread";
  }
}

TEST(SubtreeTasks, DeepSpawnChain) {
  // A degenerate chain (each task spawns exactly one child) exercises the
  // drain condition when at most one task is ever runnable.
  constexpr std::size_t kDepth = 2000;
  std::atomic<std::size_t> runs{0};
  std::function<void(SubtreeTasks::Context&, std::size_t)> chain =
      [&](SubtreeTasks::Context& ctx, std::size_t remaining) {
        runs.fetch_add(1, std::memory_order_relaxed);
        if (remaining == 0) return;
        ctx.Spawn([&chain, remaining](SubtreeTasks::Context& cctx) {
          chain(cctx, remaining - 1);
        });
      };
  SubtreeTasks::Run(4, [&](SubtreeTasks::Context& ctx) { chain(ctx, kDepth); });
  EXPECT_EQ(runs.load(), kDepth + 1);
}

}  // namespace
}  // namespace htp
