// Unit coverage of the fork-join thread pool: every index runs exactly
// once, zero-task rounds return immediately, pools are reusable across
// rounds (including after an exception), and exception propagation picks
// the lowest failing index deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace htp {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(ResolveThreadCount(0), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  ParallelFor(pool, 3, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(pool, kCount, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroTasksReturnsWithoutInvokingBody) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  ParallelFor(std::size_t{4}, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round)
    ParallelFor(pool, 50,
                [&](std::size_t i) { total += static_cast<long>(i); });
  EXPECT_EQ(total.load(), 20 * (49 * 50 / 2));
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  ParallelFor(pool, 1000, [&](std::size_t i) { total += static_cast<long>(i); });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, ExceptionOfLowestIndexPropagates) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    ParallelFor(pool, 32, [&](std::size_t i) {
      if (i % 3 == 2)  // 2, 5, 8, ... fail; lowest is 2
        throw std::runtime_error("task " + std::to_string(i));
      completed++;
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  // Every non-throwing task still ran to completion (no cancellation);
  // 10 of the 32 indices (2, 5, ..., 29) threw.
  EXPECT_EQ(completed.load(), 32 - 10);
}

TEST(ThreadPool, PoolSurvivesAThrowingRound) {
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelFor(pool, 4,
                  [](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
  std::atomic<int> ran{0};
  ParallelFor(pool, 8, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SerialOverloadRunsInOrderOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ParallelFor(std::size_t{1}, 5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ParallelOverloadSpawnsTransientPool) {
  std::atomic<long> total{0};
  ParallelFor(std::size_t{4}, 100,
              [&](std::size_t i) { total += static_cast<long>(i); });
  EXPECT_EQ(total.load(), 99L * 100 / 2);
}

TEST(ThreadPool, InParallelWorkerTrueOnlyInsidePoolTasks) {
  EXPECT_FALSE(InParallelWorker());
  ThreadPool pool(2);
  std::atomic<int> observed_inside{0};
  ParallelFor(pool, 8, [&](std::size_t) {
    if (InParallelWorker()) observed_inside++;
  });
  EXPECT_EQ(observed_inside.load(), 8);
  EXPECT_FALSE(InParallelWorker());  // the calling thread never flips
}

TEST(ThreadPool, NestedConvenienceParallelForDegradesToSerial) {
  // A pool task that itself calls the convenience ParallelFor must run the
  // inner loop inline on the same worker thread — no pool-within-a-pool —
  // so nested parallel code (e.g. the metric scan inside a parallel FLOW
  // iteration) can't oversubscribe or deadlock.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> inner_on_same_thread{0};
  ParallelFor(pool, 4, [&](std::size_t) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    EXPECT_TRUE(InParallelWorker());
    ParallelFor(std::size_t{8}, 5, [&](std::size_t) {
      inner_total++;
      if (std::this_thread::get_id() == outer_thread) inner_on_same_thread++;
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 5);
  EXPECT_EQ(inner_on_same_thread.load(), 4 * 5);
}

TEST(ThreadPool, SubmitRunsEnqueuedTask) {
  ThreadPool pool(1);
  std::promise<int> promise;
  pool.Submit([&promise] { promise.set_value(42); });
  EXPECT_EQ(promise.get_future().get(), 42);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) pool.Submit([&ran] { ran++; });
  }  // destructor joins after draining the queue
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace htp
