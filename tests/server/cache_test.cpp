#include "server/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "server/artifact_key.hpp"
#include "test_util.hpp"

namespace htp::serve {
namespace {

NetlistArtifact MakeArtifact(std::uint64_t seed) {
  auto hg = std::make_shared<const Hypergraph>(
      testutil::RandomConnectedHypergraph(16, 8, 4, seed));
  return NetlistArtifact{hg, HashNetlist(*hg)};
}

FlowInjectionResult MakeMetric(double cost, bool cancelled = false) {
  FlowInjectionResult r;
  r.metric_cost = cost;
  r.cancelled = cancelled;
  return r;
}

TEST(ArtifactCache, NetlistHitMissAndLruEviction) {
  CacheConfig config;
  config.netlist_capacity = 2;
  ArtifactCache cache(config);

  std::size_t computes = 0;
  auto fetch = [&](std::uint64_t key) {
    return cache.GetOrComputeNetlist(key, [&] {
      ++computes;
      return MakeArtifact(key);
    });
  };

  EXPECT_FALSE(fetch(1).second);  // miss
  EXPECT_TRUE(fetch(1).second);   // hit
  EXPECT_FALSE(fetch(2).second);
  EXPECT_EQ(cache.netlist_entries(), 2u);

  // Key 1 is MRU after its hit above; inserting key 3 evicts key 2.
  EXPECT_TRUE(fetch(1).second);
  EXPECT_FALSE(fetch(3).second);
  EXPECT_EQ(cache.netlist_entries(), 2u);
  EXPECT_TRUE(fetch(1).second);
  EXPECT_FALSE(fetch(2).second);  // evicted: recomputes
  EXPECT_EQ(computes, 4u);
}

TEST(ArtifactCache, DisabledTierAlwaysComputes) {
  CacheConfig config;
  config.metric_capacity = 0;
  ArtifactCache cache(config);
  EXPECT_FALSE(cache.metric_enabled());

  std::size_t computes = 0;
  for (int i = 0; i < 3; ++i) {
    auto [value, hit] =
        cache.GetOrComputeMetric(7, [&] {
          ++computes;
          return MakeMetric(42.0);
        });
    EXPECT_FALSE(hit);
    EXPECT_EQ(value.metric_cost, 42.0);
  }
  EXPECT_EQ(computes, 3u);
  EXPECT_EQ(cache.metric_entries(), 0u);
}

TEST(ArtifactCache, CsrTierCachesByStructuralHash) {
  ArtifactCache cache;
  const Hypergraph hg = testutil::RandomConnectedHypergraph(32, 16, 4, 9);
  const std::uint64_t key = HashNetlist(hg);

  auto [first, hit1] = cache.GetOrComputeCsr(
      key, [&] { return std::make_shared<const CsrView>(hg); });
  auto [second, hit2] = cache.GetOrComputeCsr(
      key, [&] { return std::make_shared<const CsrView>(hg); });
  EXPECT_FALSE(hit1);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(first.get(), second.get());  // the very same immutable view
  EXPECT_EQ(cache.csr_entries(), 1u);
}

TEST(ArtifactCache, CancelledMetricsAreServedButNeverCached) {
  ArtifactCache cache;
  std::size_t computes = 0;
  for (int i = 0; i < 2; ++i) {
    auto [value, hit] = cache.GetOrComputeMetric(11, [&] {
      ++computes;
      return MakeMetric(5.0, /*cancelled=*/true);
    });
    EXPECT_FALSE(hit);
    EXPECT_TRUE(value.cancelled);
  }
  EXPECT_EQ(computes, 2u);
  EXPECT_EQ(cache.metric_entries(), 0u);

  // A later clean result under the same key does get cached.
  auto [clean_value, clean_hit] =
      cache.GetOrComputeMetric(11, [&] { return MakeMetric(5.0); });
  EXPECT_FALSE(clean_hit);
  EXPECT_FALSE(clean_value.cancelled);
  EXPECT_EQ(cache.metric_entries(), 1u);
  EXPECT_TRUE(cache.GetOrComputeMetric(11, [&] {
                     return MakeMetric(-1.0);
                   }).second);
}

TEST(ArtifactCache, ConcurrentIdenticalRequestsComputeOnce) {
  ArtifactCache cache;
  std::atomic<int> computes{0};
  std::atomic<int> hits{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto [value, hit] = cache.GetOrComputeMetric(99, [&] {
        computes.fetch_add(1);
        // Hold the computation long enough that the other threads pile
        // into the in-flight wait instead of racing past it.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return MakeMetric(7.0);
      });
      EXPECT_EQ(value.metric_cost, 7.0);
      if (hit) hits.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(hits.load(), kThreads - 1);  // dedup waiters count as hits
  EXPECT_EQ(cache.metric_entries(), 1u);
}

TEST(ArtifactCache, ComputeExceptionPropagatesAndLeavesNoEntry) {
  ArtifactCache cache;
  EXPECT_THROW(cache.GetOrComputeMetric(
                   5, []() -> FlowInjectionResult {
                     throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.metric_entries(), 0u);
  // The key is usable again after the failure.
  auto [value, hit] =
      cache.GetOrComputeMetric(5, [] { return MakeMetric(1.0); });
  EXPECT_FALSE(hit);
  EXPECT_EQ(value.metric_cost, 1.0);
}

TEST(ArtifactKey, StructuralHashDistinguishesGraphs) {
  const Hypergraph a = testutil::RandomConnectedHypergraph(20, 10, 4, 1);
  const Hypergraph b = testutil::RandomConnectedHypergraph(20, 10, 4, 2);
  EXPECT_EQ(HashNetlist(a), HashNetlist(a));
  EXPECT_NE(HashNetlist(a), HashNetlist(b));
}

TEST(ArtifactKey, HexKeyRendersFixedWidth) {
  EXPECT_EQ(HexKey(0), "0000000000000000");
  EXPECT_EQ(HexKey(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(HexKey(~0ULL), "ffffffffffffffff");
}

}  // namespace
}  // namespace htp::serve
