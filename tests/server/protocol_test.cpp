#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include "server/json_parse.hpp"

namespace htp::serve {
namespace {

// --- JSON parser ---

TEST(JsonParse, ParsesScalarsContainersAndEscapes) {
  const JsonValue doc = ParseJson(
      R"({"s":"a\"b\u00e9\n","n":-1.5e2,"t":true,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":0}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("s")->string_value, "a\"b\xc3\xa9\n");
  EXPECT_EQ(doc.Find("n")->number_value, -150.0);
  EXPECT_TRUE(doc.Find("t")->bool_value);
  EXPECT_TRUE(doc.Find("z")->is_null());
  EXPECT_EQ(doc.Find("arr")->array_value.size(), 3u);
  EXPECT_EQ(doc.Find("obj")->object_value.size(), 1u);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(ParseJson(""), Error);
  EXPECT_THROW(ParseJson("{"), Error);
  EXPECT_THROW(ParseJson("{\"a\":1,}"), Error);
  EXPECT_THROW(ParseJson("[1 2]"), Error);
  EXPECT_THROW(ParseJson("01"), Error);       // leading zero
  EXPECT_THROW(ParseJson("\"\\q\""), Error);  // unknown escape
  EXPECT_THROW(ParseJson("{} trailing"), Error);
  EXPECT_THROW(ParseJson("nul"), Error);
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  const JsonValue doc = ParseJson(R"("\ud83d\ude00")");
  EXPECT_EQ(doc.string_value, "\xf0\x9f\x98\x80");  // U+1F600
  EXPECT_THROW(ParseJson(R"("\ud83d")"), Error);  // lone high surrogate
}

// --- Request decoding ---

TEST(Protocol, DecodesPartitionRequestWithDefaults) {
  const ServeRequest request =
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","id":7})"));
  EXPECT_EQ(request.op, "partition");
  EXPECT_EQ(request.id_json, "7");
  EXPECT_EQ(request.session.circuit, "c1355");
  EXPECT_EQ(request.session.algo, "flow");
  EXPECT_EQ(request.session.height, 4u);
  EXPECT_EQ(request.session.iterations, 4u);
  EXPECT_EQ(request.session.seed, 1u);
  EXPECT_EQ(request.deadline_ms, 0.0);
  EXPECT_FALSE(request.want_report);
  EXPECT_EQ(request.session.report_tool, "htp_serve");
}

TEST(Protocol, DecodesExplicitFields) {
  const ServeRequest request = ParseServeRequest(ParseJson(
      R"({"circuit":"c2670","id":"req-1","height":3,"branching":4,)"
      R"("slack":0.2,"weights":[1,4,16],"iterations":2,"seed":9,)"
      R"("deadline_ms":1500,"refine":true,"report":true})"));
  EXPECT_EQ(request.id_json, "\"req-1\"");
  EXPECT_EQ(request.session.height, 3u);
  EXPECT_EQ(request.session.branching, 4u);
  EXPECT_EQ(request.session.weights, (std::vector<double>{1, 4, 16}));
  EXPECT_EQ(request.session.seed, 9u);
  EXPECT_TRUE(request.session.refine);
  EXPECT_EQ(request.deadline_ms, 1500.0);
  EXPECT_EQ(request.session.budget.time_budget_seconds, 1.5);
  EXPECT_TRUE(request.want_report);
  EXPECT_TRUE(request.session.collect_report);
}

TEST(Protocol, RejectsUnknownMembersAndBadTypes) {
  // Strict decoding: a typo must fail loudly, not run with defaults.
  EXPECT_THROW(
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","iteration":9})")),
      Error);
  EXPECT_THROW(ParseServeRequest(ParseJson(R"([1,2])")), Error);
  EXPECT_THROW(
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","height":"x"})")),
      Error);
  EXPECT_THROW(
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","height":2.5})")),
      Error);
  EXPECT_THROW(
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","deadline_ms":-1})")),
      Error);
  EXPECT_THROW(
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","id":[1]})")),
      Error);
  EXPECT_THROW(
      ParseServeRequest(ParseJson(R"({"circuit":"c1355","weights":[true]})")),
      Error);
}

TEST(Protocol, RejectsBadSourceCombinations) {
  EXPECT_THROW(ParseServeRequest(ParseJson(R"({"seed":1})")), Error);
  EXPECT_THROW(ParseServeRequest(ParseJson(
                   R"x({"circuit":"c1355","bench_text":"INPUT(a)"})x")),
               Error);
  // ...but control ops need no netlist source.
  EXPECT_EQ(ParseServeRequest(ParseJson(R"({"op":"ping"})")).op, "ping");
}

TEST(Protocol, RejectsWrongSchemaOrVersion) {
  EXPECT_THROW(ParseServeRequest(ParseJson(
                   R"({"schema":"htp-run-report","circuit":"c1355"})")),
               Error);
  EXPECT_THROW(ParseServeRequest(ParseJson(
                   R"({"schema_version":2,"circuit":"c1355"})")),
               Error);
  const ServeRequest ok = ParseServeRequest(ParseJson(
      R"({"schema":"htp-serve-request","schema_version":1,)"
      R"("circuit":"c1355"})"));
  EXPECT_EQ(ok.op, "partition");
}

TEST(Protocol, RejectsUnknownOp) {
  EXPECT_THROW(ParseServeRequest(ParseJson(R"({"op":"restart"})")), Error);
}

// --- Response rendering ---

TEST(Protocol, AckAndErrorResponsesAreWellFormed) {
  const std::string ack = RenderServeAck("\"a\"", "ping");
  const JsonValue ack_doc = ParseJson(ack);
  EXPECT_EQ(ack_doc.Find("schema")->string_value, "htp-serve-response");
  EXPECT_EQ(ack_doc.Find("schema_version")->number_value, 1.0);
  EXPECT_EQ(ack_doc.Find("id")->string_value, "a");
  EXPECT_EQ(ack_doc.Find("status")->string_value, "ok");
  EXPECT_EQ(ack_doc.Find("op")->string_value, "ping");

  const std::string err = RenderServeError("null", "request: bad \"thing\"");
  const JsonValue err_doc = ParseJson(err);
  EXPECT_TRUE(err_doc.Find("id")->is_null());
  EXPECT_EQ(err_doc.Find("status")->string_value, "error");
  EXPECT_EQ(err_doc.Find("error")->string_value, "request: bad \"thing\"");
}

}  // namespace
}  // namespace htp::serve
