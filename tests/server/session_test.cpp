#include "server/session.hpp"

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/partition_io.hpp"
#include "obs/report.hpp"
#include "server/protocol.hpp"
#include "test_util.hpp"

namespace htp::serve {
namespace {

SessionRequest SmallRequest() {
  SessionRequest request;
  request.circuit = "c1355";
  request.height = 3;
  request.iterations = 1;
  return request;
}

TEST(Session, MatchesDirectPipeline) {
  const SessionResult run = RunSession(SmallRequest(), nullptr);
  ASSERT_TRUE(run.partition.has_value());
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(run.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(run.cost, PartitionCost(*run.partition, run.spec));
  EXPECT_NE(run.netlist_hash, 0u);
  // No cache attached: every tier reports zero traffic.
  EXPECT_EQ(run.cache.netlist, "off");
  EXPECT_EQ(run.cache.metric_hits + run.cache.metric_misses, 0u);
}

TEST(Session, WarmCacheRunIsBitIdenticalToCold) {
  ArtifactCache cache;
  const SessionRequest request = SmallRequest();

  const SessionResult cold = RunSession(request, &cache);
  EXPECT_EQ(cold.cache.netlist, "miss");
  EXPECT_EQ(cold.cache.metric_hits, 0u);
  EXPECT_GT(cold.cache.metric_misses, 0u);

  const SessionResult warm = RunSession(request, &cache);
  EXPECT_EQ(warm.cache.netlist, "hit");
  EXPECT_GT(warm.cache.metric_hits, 0u);
  EXPECT_EQ(warm.cache.metric_misses, 0u);

  // The serve determinism contract: partition, cost, and iteration stats
  // are bit-identical whether every tier missed or every tier hit.
  EXPECT_EQ(WritePartitionText(*cold.partition),
            WritePartitionText(*warm.partition));
  EXPECT_EQ(cold.cost, warm.cost);
  EXPECT_EQ(cold.netlist_hash, warm.netlist_hash);
  ASSERT_EQ(cold.iterations.size(), warm.iterations.size());
  for (std::size_t i = 0; i < cold.iterations.size(); ++i) {
    EXPECT_EQ(cold.iterations[i].metric_cost, warm.iterations[i].metric_cost);
    EXPECT_EQ(cold.iterations[i].injections, warm.iterations[i].injections);
  }
}

TEST(Session, WarmResponseDeterministicSectionIsByteIdentical) {
  ArtifactCache cache;
  ServeRequest request;
  request.session = SmallRequest();

  const SessionResult cold = RunSession(request.session, &cache);
  const SessionResult warm = RunSession(request.session, &cache);
  const std::string cold_response = RenderServeResponse(request, cold, 0.25);
  const std::string warm_response = RenderServeResponse(request, warm, 3.5);
  // The full responses differ (cache + wall sections); the deterministic
  // slice — exactly what obs::DeterministicSection extracts — must not.
  EXPECT_NE(cold_response, warm_response);
  const std::string_view cold_det = obs::DeterministicSection(cold_response);
  const std::string_view warm_det = obs::DeterministicSection(warm_response);
  ASSERT_FALSE(cold_det.empty());
  EXPECT_EQ(cold_det, warm_det);
}

TEST(Session, CacheUnaffectedByDifferentSeed) {
  ArtifactCache cache;
  SessionRequest request = SmallRequest();
  const SessionResult first = RunSession(request, &cache);
  request.seed = 2;
  // A built-in circuit instantiates from the seed, so seed 2 is a
  // different netlist source AND different injection keys: nothing hits.
  const SessionResult second = RunSession(request, &cache);
  EXPECT_EQ(second.cache.netlist, "miss");
  EXPECT_EQ(second.cache.metric_hits, 0u);
  EXPECT_NE(first.netlist_hash, second.netlist_hash);
}

TEST(Session, ProvidedNetlistSkipsSourceResolution) {
  auto hg = std::make_shared<const Hypergraph>(
      testutil::RandomConnectedHypergraph(64, 48, 4, 3));
  SessionRequest request;
  request.netlist = hg;
  request.height = 2;
  request.iterations = 1;
  ArtifactCache cache;
  const SessionResult run = RunSession(request, &cache);
  EXPECT_EQ(run.netlist.get(), hg.get());
  EXPECT_EQ(run.cache.netlist, "off");  // tier never consulted
  ASSERT_TRUE(run.partition.has_value());
}

TEST(Session, ExpiredDeadlineStillReturnsValidPartition) {
  SessionRequest request = SmallRequest();
  request.budget.time_budget_seconds = 0.0000001;
  const SessionResult run = RunSession(request, nullptr);
  ASSERT_TRUE(run.partition.has_value());
  EXPECT_FALSE(run.completed);
  EXPECT_EQ(run.stop_reason, StopReason::kDeadline);
}

TEST(Session, RejectsUnknownAlgoAndBadWeights) {
  SessionRequest bad_algo = SmallRequest();
  bad_algo.algo = "bogus";
  EXPECT_THROW(RunSession(bad_algo, nullptr), Error);

  SessionRequest bad_weights = SmallRequest();
  bad_weights.weights = {1.0, 2.0};  // height is 3
  EXPECT_THROW(RunSession(bad_weights, nullptr), Error);

  SessionRequest bad_multilevel = SmallRequest();
  bad_multilevel.algo = "rfm";
  bad_multilevel.multilevel = true;
  EXPECT_THROW(RunSession(bad_multilevel, nullptr), Error);

  SessionRequest no_source;
  no_source.circuit.clear();
  EXPECT_THROW(RunSession(no_source, nullptr), Error);

  // An explicitly named bench file must error when unreadable or empty,
  // never silently fall back to the request's defaulted circuit.
  SessionRequest missing_file = SmallRequest();
  missing_file.bench_file = "/nonexistent/htp.bench";
  EXPECT_THROW(RunSession(missing_file, nullptr), Error);

  SessionRequest empty_file = SmallRequest();
  empty_file.bench_file = "/dev/null";
  EXPECT_THROW(RunSession(empty_file, nullptr), Error);
}

TEST(Session, RfmFallbackReportCarriesRequestedTool) {
  SessionRequest request = SmallRequest();
  request.algo = "rfm";
  request.collect_report = true;
  request.report_tool = "htp_serve";
  const SessionResult run = RunSession(request, nullptr);
  EXPECT_NE(run.report.find("\"tool\":\"htp_serve\""), std::string::npos);
}

}  // namespace
}  // namespace htp::serve
