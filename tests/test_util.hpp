// Shared helpers for the htp test suite.
#pragma once

#include <algorithm>
#include <vector>

#include "netlist/hypergraph.hpp"
#include "netlist/rng.hpp"

namespace htp::testutil {

/// Deterministic random connected hypergraph: `n` unit-size nodes, a random
/// spanning tree (guaranteeing connectivity), plus `extra_nets` random nets
/// of degree 2..max_degree with unit capacities.
inline Hypergraph RandomConnectedHypergraph(NodeId n, std::size_t extra_nets,
                                            std::size_t max_degree,
                                            std::uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder builder;
  for (NodeId v = 0; v < n; ++v) builder.add_node(1.0);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId u = static_cast<NodeId>(rng.next_below(v));
    builder.add_net({u, v});
  }
  for (std::size_t i = 0; i < extra_nets; ++i) {
    const std::size_t deg =
        2 + rng.next_below(std::max<std::size_t>(1, max_degree - 1));
    std::vector<NodeId> pins;
    for (std::size_t k = 0; k < deg; ++k)
      pins.push_back(static_cast<NodeId>(rng.next_below(n)));
    builder.add_net(pins);  // duplicate pins merged; degenerate nets dropped
  }
  return builder.build();
}

/// Brute-force single-source shortest distances over a hypergraph with net
/// lengths: Bellman-Ford-style relaxation until fixpoint (reference oracle
/// for Dijkstra).
inline std::vector<double> BruteForceDistances(
    const Hypergraph& hg, NodeId source, std::span<const double> net_length) {
  std::vector<double> dist(hg.num_nodes(),
                           std::numeric_limits<double>::infinity());
  dist[source] = 0.0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NetId e = 0; e < hg.num_nets(); ++e) {
      double best = std::numeric_limits<double>::infinity();
      for (NodeId v : hg.pins(e)) best = std::min(best, dist[v]);
      const double cand = best + net_length[e];
      for (NodeId v : hg.pins(e)) {
        if (cand < dist[v] - 1e-12) {
          dist[v] = cand;
          changed = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace htp::testutil
