#include "treemap/tree_mapping.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "treemap/tree_topology.hpp"

namespace htp {
namespace {

TEST(TreeTopology, BuildAndRoot) {
  TreeTopology tree;
  const TreeVertexId a = tree.AddVertex(4.0, "a");
  const TreeVertexId b = tree.AddVertex(4.0, "b");
  const TreeVertexId c = tree.AddVertex(4.0, "c");
  tree.AddEdge(a, b, 2.0);
  tree.AddEdge(b, c, 3.0);
  tree.Finalize();
  EXPECT_EQ(tree.parent(a), kInvalidTreeVertex);  // vertex 0 is the root
  EXPECT_EQ(tree.parent(b), a);
  EXPECT_DOUBLE_EQ(tree.parent_edge_weight(c), 3.0);
  EXPECT_DOUBLE_EQ(tree.total_capacity(), 12.0);
  EXPECT_EQ(tree.order().front(), a);
}

TEST(TreeTopology, RejectsNonTrees) {
  {
    TreeTopology cycle;
    const auto a = cycle.AddVertex(1.0);
    const auto b = cycle.AddVertex(1.0);
    const auto c = cycle.AddVertex(1.0);
    cycle.AddEdge(a, b);
    cycle.AddEdge(b, c);
    cycle.AddEdge(c, a);
    EXPECT_THROW(cycle.Finalize(), Error);
  }
  {
    TreeTopology forest;
    forest.AddVertex(1.0);
    forest.AddVertex(1.0);
    EXPECT_THROW(forest.Finalize(), Error);  // 2 vertices, 0 edges
  }
}

TEST(TreeTopology, SteinerCostOnAPath) {
  const TreeTopology path = TreeTopology::Path(5, 10.0);
  // Marks at the ends span all four edges; adjacent marks span one.
  const std::vector<TreeVertexId> ends{0, 4};
  EXPECT_DOUBLE_EQ(path.SteinerCost(ends), 4.0);
  const std::vector<TreeVertexId> pair{2, 3};
  EXPECT_DOUBLE_EQ(path.SteinerCost(pair), 1.0);
  const std::vector<TreeVertexId> one{3, 3, 3};
  EXPECT_DOUBLE_EQ(path.SteinerCost(one), 0.0);
  EXPECT_DOUBLE_EQ(path.SteinerCost({}), 0.0);
  // A middle mark does not change the spanned edge set.
  const std::vector<TreeVertexId> three{0, 2, 4};
  EXPECT_DOUBLE_EQ(path.SteinerCost(three), 4.0);
}

TEST(TreeTopology, SteinerCostOnAStar) {
  const TreeTopology star = TreeTopology::Star(4, 5.0);
  // Leaves are vertices 1..4; two leaves route through the hub: 2 edges.
  const std::vector<TreeVertexId> two{1, 3};
  EXPECT_DOUBLE_EQ(star.SteinerCost(two), 2.0);
  const std::vector<TreeVertexId> all{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(star.SteinerCost(all), 4.0);
}

TEST(TreeMapping, CostOfAHandMapping) {
  // Nodes 0-1 on vertex 0, node 2 on vertex 2 of a 3-path: the 3-pin net
  // spans both edges, the 2-pin net {0,1} spans none.
  HypergraphBuilder builder;
  for (int i = 0; i < 3; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({0u, 1u, 2u}, 2.0);
  Hypergraph hg = builder.build();
  const TreeTopology path = TreeTopology::Path(3, 2.0);
  TreeMapping mapping(hg, path);
  mapping.Assign(0, 0);
  mapping.Assign(1, 0);
  mapping.Assign(2, 2);
  EXPECT_DOUBLE_EQ(NetRoutingCost(mapping, 0), 0.0);
  EXPECT_DOUBLE_EQ(NetRoutingCost(mapping, 1), 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(MappingCost(mapping), 4.0);
  EXPECT_TRUE(ValidateMapping(mapping).empty());
}

TEST(TreeMapping, ValidateFlagsOverloadAndIncompleteness) {
  HypergraphBuilder builder;
  for (int i = 0; i < 3; ++i) builder.add_node(2.0);
  builder.add_net({0u, 1u});
  builder.add_net({1u, 2u});
  Hypergraph hg = builder.build();
  const TreeTopology path = TreeTopology::Path(2, 3.0);
  TreeMapping mapping(hg, path);
  mapping.Assign(0, 0);
  mapping.Assign(1, 0);  // load 4 > capacity 3
  EXPECT_GE(ValidateMapping(mapping).size(), 2u);  // overload + incomplete
}

TEST(GreedyTreeMap, ProducesValidMappings) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(40, 40, 3, seed);
    const TreeTopology tree = TreeTopology::KAryLeaves(2, 2, 14.0);
    Rng rng(seed);
    const TreeMapping mapping = GreedyTreeMap(hg, tree, rng);
    EXPECT_TRUE(ValidateMapping(mapping).empty()) << "seed " << seed;
  }
}

TEST(GreedyTreeMap, ThrowsWhenItCannotFit) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(20, 10, 3, 1);
  const TreeTopology tiny = TreeTopology::Path(2, 5.0);  // capacity 10 < 20
  Rng rng(1);
  EXPECT_THROW(GreedyTreeMap(hg, tiny, rng), Error);
}

TEST(RefineTreeMap, RecoversClusterStructure) {
  // Two K5 clusters on a 2-path: optimal keeps each cluster on one vertex.
  HypergraphBuilder builder;
  for (int i = 0; i < 10; ++i) builder.add_node();
  for (NodeId base : {0u, 5u})
    for (NodeId i = 0; i < 5; ++i)
      for (NodeId j = i + 1; j < 5; ++j) builder.add_net({base + i, base + j});
  builder.add_net({0u, 5u});
  Hypergraph hg = builder.build();
  const TreeTopology path = TreeTopology::Path(2, 5.0);
  TreeMapping mapping(hg, path);
  // Adversarial start: clusters interleaved.
  for (NodeId v = 0; v < 10; ++v)
    mapping.Assign(v, v % 2 == 0 ? 0 : 1);
  const TreeMapStats stats = RefineTreeMap(mapping);
  EXPECT_DOUBLE_EQ(stats.final_cost, 1.0);  // only the bridge routes
  EXPECT_TRUE(ValidateMapping(mapping).empty());
}

class TreeMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeMapPropertyTest, RefinementNeverWorsensAndStaysValid) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 20, 20 + seed % 30, 4, seed);
  const TreeTopology tree =
      TreeTopology::KAryLeaves(2, 2, hg.total_size() / 3.0);
  Rng rng(seed);
  TreeMapping mapping = GreedyTreeMap(hg, tree, rng);
  const double before = MappingCost(mapping);
  const TreeMapStats stats = RefineTreeMap(mapping);
  EXPECT_LE(stats.final_cost, before + 1e-9);
  EXPECT_NEAR(stats.final_cost, MappingCost(mapping), 1e-9);
  EXPECT_TRUE(ValidateMapping(mapping).empty());
}

TEST_P(TreeMapPropertyTest, SteinerCostIsMetricMonotone) {
  // Adding marks can only grow the spanned subtree.
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const TreeTopology tree = TreeTopology::KAryLeaves(3, 2, 1.0);
  std::vector<TreeVertexId> marks;
  double prev = 0.0;
  for (int i = 0; i < 8; ++i) {
    marks.push_back(
        static_cast<TreeVertexId>(rng.next_below(tree.num_vertices())));
    const double cost = tree.SteinerCost(marks);
    EXPECT_GE(cost, prev - 1e-12);
    prev = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeMapPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace htp
